#include "query/selection.h"

#include "util/strings.h"

namespace hedgeq::query {

using hedge::Hedge;
using hedge::NodeId;

Result<SelectionQuery> ParseSelectionQuery(std::string_view text,
                                           hedge::Vocabulary& vocab) {
  std::string_view s = StripAsciiWhitespace(text);
  if (!StartsWith(s, "select(") || s.back() != ')') {
    return Status::InvalidArgument(
        "a selection query has the form select(e1; e2)");
  }
  std::string_view body = s.substr(7, s.size() - 8);
  size_t split = body.find(';');
  if (split == std::string_view::npos) {
    return Status::InvalidArgument(
        "select(e1; e2) needs a ';' between the hedge regular expression "
        "and the pointed hedge representation");
  }
  std::string_view e1_text = StripAsciiWhitespace(body.substr(0, split));
  std::string_view e2_text = body.substr(split + 1);

  SelectionQuery query{nullptr,
                       phr::Phr({}, strre::EmptySet())};
  if (e1_text != "*") {
    Result<hre::Hre> e1 = hre::ParseHre(e1_text, vocab);
    if (!e1.ok()) return e1.status();
    query.subhedge = std::move(e1).value();
  }
  Result<phr::Phr> e2 = phr::ParsePhr(e2_text, vocab);
  if (!e2.ok()) return e2.status();
  query.envelope = std::move(e2).value();
  return query;
}

Result<SelectionEvaluator> SelectionEvaluator::Create(
    const SelectionQuery& query, const automata::DeterminizeOptions& options) {
  SelectionEvaluator out;
  if (query.subhedge != nullptr) {
    auto det = automata::Determinize(hre::CompileHre(query.subhedge), options);
    if (!det.ok()) return det.status();
    out.subhedge_dha_ = std::move(det->dha);
  }
  Result<PhrEvaluator> phr_eval = PhrEvaluator::Create(query.envelope, options);
  if (!phr_eval.ok()) return phr_eval.status();
  out.phr_ = std::move(phr_eval).value();
  return out;
}

std::vector<bool> SelectionEvaluator::Locate(const Hedge& doc) const {
  std::vector<bool> located = phr_->Locate(doc);
  if (subhedge_dha_.has_value()) {
    // Theorem 3: a node's subhedge lies in L(e1) iff M-down-e1 assigns a
    // marked state, i.e. its child sequence lands in the final language.
    automata::Dha::MarkedRun marked = subhedge_dha_->RunWithMarks(doc);
    for (size_t n = 0; n < located.size(); ++n) {
      located[n] = located[n] && marked.marks[n];
    }
  }
  return located;
}

std::vector<NodeId> SelectionEvaluator::LocatedNodes(const Hedge& doc) const {
  std::vector<bool> located = Locate(doc);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < located.size(); ++n) {
    if (located[n]) out.push_back(n);
  }
  return out;
}

NaiveSelectionEvaluator::NaiveSelectionEvaluator(const SelectionQuery& query)
    : envelope_(query.envelope), matcher_(envelope_) {
  if (query.subhedge != nullptr) {
    subhedge_nha_ = hre::CompileHre(query.subhedge);
  }
}

std::vector<bool> NaiveSelectionEvaluator::Locate(const Hedge& doc) const {
  std::vector<bool> located(doc.num_nodes(), false);
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) continue;
    if (subhedge_nha_.has_value() &&
        !subhedge_nha_->Accepts(doc.SubhedgeOf(n))) {
      continue;
    }
    located[n] = matcher_.Matches(doc.EnvelopeOf(n));
  }
  return located;
}

}  // namespace hedgeq::query
