#include "query/selection.h"

#include <algorithm>

#include "lint/analyze.h"
#include "obs/scope.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hedgeq::query {

using hedge::Hedge;
using hedge::NodeId;

Result<SelectionQuery> ParseSelectionQuery(std::string_view text,
                                           hedge::Vocabulary& vocab) {
  std::string_view s = StripAsciiWhitespace(text);
  if (!StartsWith(s, "select(") || s.back() != ')') {
    return Status::InvalidArgument(
        "a selection query has the form select(e1; e2)");
  }
  std::string_view body = s.substr(7, s.size() - 8);
  size_t split = body.find(';');
  if (split == std::string_view::npos) {
    return Status::InvalidArgument(
        "select(e1; e2) needs a ';' between the hedge regular expression "
        "and the pointed hedge representation");
  }
  std::string_view e1_text = StripAsciiWhitespace(body.substr(0, split));
  std::string_view e2_text = body.substr(split + 1);

  SelectionQuery query{nullptr,
                       phr::Phr({}, strre::EmptySet())};
  if (e1_text != "*") {
    Result<hre::Hre> e1 = hre::ParseHre(e1_text, vocab);
    if (!e1.ok()) return e1.status();
    query.subhedge = std::move(e1).value();
  }
  Result<phr::Phr> e2 = phr::ParsePhr(e2_text, vocab);
  if (!e2.ok()) return e2.status();
  query.envelope = std::move(e2).value();
  return query;
}

Result<SelectionEvaluator> SelectionEvaluator::Create(
    const SelectionQuery& query, const ExecBudget& budget) {
  return CreateImpl(query, budget, std::string_view());
}

Result<SelectionEvaluator> SelectionEvaluator::CreateImpl(
    const SelectionQuery& query, const ExecBudget& budget,
    std::string_view envelope_cache_scope) {
  SelectionEvaluator out;
  if (query.subhedge != nullptr) {
    HEDGEQ_FAILPOINT("selection/subhedge");
    BudgetScope scope(budget);
    Result<automata::Nha> nha = hre::CompileHre(query.subhedge, scope);
    if (!nha.ok()) return nha.status();
    auto det = automata::Determinize(*nha, scope);
    if (det.ok()) {
      out.subhedge_dha_ = std::move(det->dha);
    } else if (IsDegradable(det.status().code())) {
      // Theorem 3 marks can also come from on-the-fly subset simulation.
      // (This also rescues a missed deadline: the lazy engine needs no
      // further preprocessing, so switching costs nothing.)
      automata::LazyDhaOptions opts;
      opts.max_cache_bytes =
          std::min(budget.max_memory_bytes, opts.max_cache_bytes);
      out.subhedge_lazy_.emplace(std::move(*nha), opts);
      // Budget outcome for the flight record (same contract as the
      // envelope-side fallback in evaluator.cc).
      if (auto* qscope = obs::QueryScope::Current(); qscope != nullptr) {
        qscope->Annotate("outcome", "degraded_lazy");
      }
    } else {
      return det.status();
    }
  }
  Result<PhrEvaluator> phr_eval =
      PhrEvaluator::Create(query.envelope, budget, envelope_cache_scope);
  if (!phr_eval.ok()) return phr_eval.status();
  out.phr_ = std::move(phr_eval).value();
  return out;
}

Result<SelectionEvaluator> SelectionEvaluator::Create(
    const SelectionQuery& query, const ExecBudget& budget,
    const hedge::Vocabulary& vocab, const lint::LintOptions& preflight,
    std::vector<lint::Diagnostic>* diagnostics) {
  std::vector<lint::Diagnostic> local;
  std::vector<lint::Diagnostic>& sink =
      diagnostics != nullptr ? *diagnostics : local;
  const size_t begin = sink.size();
  if (query.subhedge != nullptr) {
    lint::LintHre(query.subhedge, vocab, preflight, sink);
    for (size_t d = begin; d < sink.size(); ++d) {
      sink[d].span = "subhedge condition e1: " + sink[d].span;
    }
  }
  lint::LintPhrTriplets(query.envelope, vocab, preflight, sink);
  if (preflight.fail_on_error) {
    HEDGEQ_RETURN_IF_ERROR(lint::ErrorStatus(sink, begin));
  }
  // With the vocabulary in hand the envelope compile can be keyed
  // end-to-end in the certificate cache by its canonical text.
  return CreateImpl(query, budget, query.envelope.ToString(vocab));
}

std::vector<bool> SelectionEvaluator::Locate(const Hedge& doc) const {
  std::vector<bool> located = phr_->Locate(doc);
  // Theorem 3: a node's subhedge lies in L(e1) iff M-down-e1 assigns a
  // marked state, i.e. its child sequence lands in the final language.
  if (subhedge_dha_.has_value()) {
    automata::Dha::MarkedRun marked = subhedge_dha_->RunWithMarks(doc);
    for (size_t n = 0; n < located.size(); ++n) {
      located[n] = located[n] && marked.marks[n];
    }
  } else if (subhedge_lazy_.has_value()) {
    automata::LazyDha::MarkedRun marked = subhedge_lazy_->RunWithMarks(doc);
    for (size_t n = 0; n < located.size(); ++n) {
      located[n] = located[n] && marked.marks[n];
    }
  }
  return located;
}

automata::EvalStats SelectionEvaluator::stats() const {
  automata::EvalStats s = phr_->stats();
  if (subhedge_lazy_.has_value()) {
    const automata::EvalStats& t = subhedge_lazy_->stats();
    s.fallback_used = true;
    s.states_materialized += t.states_materialized;
    s.cache_evictions += t.cache_evictions;
    s.cache_hits += t.cache_hits;
    s.cache_misses += t.cache_misses;
    s.peak_cache_bytes += t.peak_cache_bytes;
  }
  return s;
}

std::vector<NodeId> SelectionEvaluator::LocatedNodes(const Hedge& doc) const {
  std::vector<bool> located = Locate(doc);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < located.size(); ++n) {
    if (located[n]) out.push_back(n);
  }
  return out;
}

NaiveSelectionEvaluator::NaiveSelectionEvaluator(const SelectionQuery& query)
    : envelope_(query.envelope), matcher_(envelope_) {
  if (query.subhedge != nullptr) {
    subhedge_nha_ = hre::CompileHre(query.subhedge);
  }
}

std::vector<bool> NaiveSelectionEvaluator::Locate(const Hedge& doc) const {
  std::vector<bool> located(doc.num_nodes(), false);
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) continue;
    if (subhedge_nha_.has_value() &&
        !subhedge_nha_->Accepts(doc.SubhedgeOf(n))) {
      continue;
    }
    located[n] = matcher_.Matches(doc.EnvelopeOf(n));
  }
  return located;
}

}  // namespace hedgeq::query
