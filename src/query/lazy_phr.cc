#include "query/lazy_phr.h"

#include <algorithm>

#include "automata/nha.h"
#include "hre/compile.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"

namespace hedgeq::query {

using automata::HState;
using automata::Nha;
using hedge::Hedge;
using hedge::kNullNode;
using hedge::NodeId;
using strre::Nfa;
using strre::StateId;

namespace {

Nfa ShiftLetters(const Nfa& nfa, HState offset) {
  return strre::SubstituteSets(nfa, [offset](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + offset};
  });
}

// Epsilon-closed start set of an NFA, as a Bitset over its states.
Bitset StartSet(const Nfa& nfa) {
  Bitset s(nfa.num_states());
  if (nfa.start() != strre::kNoState) s.Set(nfa.start());
  nfa.EpsilonClosure(s);
  return s;
}

bool AnyAccepting(const Nfa& nfa, const Bitset& set) {
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    if (set.Test(q) && nfa.IsAccepting(q)) return true;
  }
  return false;
}

// One step of set simulation where the letter is itself a SET of symbols:
// the successor set under any symbol in `letter`. This is exactly the
// transition of the lifted subset DFA (LiftToSubsets) computed on demand.
Bitset StepSet(const Nfa& nfa, const Bitset& from, const Bitset& letter) {
  Bitset next(nfa.num_states());
  for (StateId q = 0; q < nfa.num_states(); ++q) {
    if (!from.Test(q)) continue;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(q)) {
      if (t.symbol < letter.size() && letter.Test(t.symbol)) next.Set(t.to);
    }
  }
  nfa.EpsilonClosure(next);
  return next;
}

}  // namespace

Result<LazyPhrEvaluator> LazyPhrEvaluator::Create(const phr::Phr& phr,
                                                  const ExecBudget& budget) {
  // A fresh scope: charges of a failed eager attempt must not count against
  // the (linear) lazy construction.
  BudgetScope scope(budget);
  LazyPhrEvaluator out;
  const size_t n = phr.triplets().size();

  Nha union_nha;
  out.elder_final_.resize(n);
  out.younger_rev_.resize(n);
  out.elder_any_.assign(n, false);
  out.younger_any_.assign(n, false);
  out.labels_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const phr::PointedBaseRep& t = phr.triplets()[i];
    out.labels_.push_back(t.label);
    if (t.elder == nullptr) {
      out.elder_any_[i] = true;
    } else {
      Result<Nha> m = hre::CompileHre(t.elder, scope);
      if (!m.ok()) return m.status();
      HState off = automata::CopyNhaInto(*m, union_nha);
      out.elder_final_[i] = ShiftLetters(m->final_nfa(), off);
    }
    if (t.younger == nullptr) {
      out.younger_any_[i] = true;
    } else {
      Result<Nha> m = hre::CompileHre(t.younger, scope);
      if (!m.ok()) return m.status();
      HState off = automata::CopyNhaInto(*m, union_nha);
      out.younger_rev_[i] =
          strre::ReverseNfa(ShiftLetters(m->final_nfa(), off));
    }
  }
  out.rev_regex_ = strre::ReverseNfa(strre::CompileRegex(phr.regex()));

  automata::LazyDhaOptions opts;
  opts.max_cache_bytes = std::min(budget.max_memory_bytes,
                                  opts.max_cache_bytes);
  out.lazy_.emplace(std::move(union_nha), opts);
  return out;
}

std::vector<bool> LazyPhrEvaluator::Locate(const Hedge& doc) const {
  const size_t n = labels_.size();
  // Pass 1 (bottom-up): the subset of M's states at every node.
  std::vector<Bitset> subsets;
  {
    HEDGEQ_OBS_SPAN(pass1, obs::spans::kPhrEvalPass1);
    subsets = lazy_->Run(doc);
    if (obs::Enabled()) {
      HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalPass1Nodes, doc.num_nodes());
      pass1.AddArg("nodes", doc.num_nodes());
      pass1.AddArg("lazy", 1);
    }
  }
  HEDGEQ_OBS_SPAN(pass2, obs::spans::kPhrEvalPass2);

  // Pass 2 (per sibling group): which triplets' elder/younger conditions
  // hold at each node. elder_ok[node].Test(i) iff the elder sibling word
  // lies in F_i1 — decided by simulating F_i1's NFA over the subset
  // letters, recording acceptance before each position; symmetrically for
  // the younger side with the reversed NFA fed right-to-left.
  std::vector<Bitset> elder_ok(doc.num_nodes());
  std::vector<Bitset> younger_ok(doc.num_nodes());
  auto process_group = [&](const std::vector<NodeId>& kids) {
    if (kids.empty()) return;
    for (NodeId kid : kids) {
      elder_ok[kid] = Bitset(n);
      younger_ok[kid] = Bitset(n);
    }
    for (size_t i = 0; i < n; ++i) {
      if (elder_any_[i]) {
        for (NodeId kid : kids) elder_ok[kid].Set(i);
      } else {
        Bitset cur = StartSet(elder_final_[i]);
        for (NodeId kid : kids) {
          if (AnyAccepting(elder_final_[i], cur)) elder_ok[kid].Set(i);
          cur = StepSet(elder_final_[i], cur, subsets[kid]);
        }
      }
      if (younger_any_[i]) {
        for (NodeId kid : kids) younger_ok[kid].Set(i);
      } else {
        Bitset cur = StartSet(younger_rev_[i]);
        for (size_t jj = kids.size(); jj-- > 0;) {
          if (AnyAccepting(younger_rev_[i], cur)) younger_ok[kids[jj]].Set(i);
          cur = StepSet(younger_rev_[i], cur, subsets[kids[jj]]);
        }
      }
    }
  };
  process_group(doc.roots());
  for (NodeId m = 0; m < doc.num_nodes(); ++m) {
    if (doc.label(m).kind == hedge::LabelKind::kSymbol &&
        doc.first_child(m) != kNullNode) {
      process_group(doc.ChildrenOf(m));
    }
  }

  // Pass 3 (top-down): set simulation of the reversed triplet regex. The
  // letter consumed at a node is the set of triplets admissible there —
  // label matches and both sibling conditions hold (precisely the encoded
  // letters whose xi image the eager mirror DFA could read). Arena ids
  // ascend from parents to children, so a forward sweep visits parents
  // first.
  std::vector<Bitset> nstate(doc.num_nodes());
  std::vector<bool> located(doc.num_nodes(), false);
  const Bitset start = StartSet(rev_regex_);
  for (NodeId node = 0; node < doc.num_nodes(); ++node) {
    if (doc.label(node).kind != hedge::LabelKind::kSymbol) continue;
    NodeId parent = doc.parent(node);
    const Bitset& from = parent == kNullNode ? start : nstate[parent];
    nstate[node] = Bitset(rev_regex_.num_states());
    if (from.size() == 0 || from.None()) continue;  // dead branch
    Bitset allowed(n);
    bool any = false;
    for (size_t i = 0; i < n; ++i) {
      if (labels_[i] == doc.label(node).id && elder_ok[node].Test(i) &&
          younger_ok[node].Test(i)) {
        allowed.Set(i);
        any = true;
      }
    }
    if (!any) continue;  // label admits no triplet here: branch dies
    nstate[node] = StepSet(rev_regex_, from, allowed);
    located[node] = AnyAccepting(rev_regex_, nstate[node]);
  }
  if (obs::Enabled()) {
    size_t hits = 0;
    for (NodeId node = 0; node < doc.num_nodes(); ++node) {
      hits += located[node] ? 1 : 0;
    }
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalPass2Nodes, doc.num_nodes());
    HEDGEQ_OBS_COUNT(obs::metrics::kPhrEvalLocated, hits);
    pass2.AddArg("nodes", doc.num_nodes());
    pass2.AddArg("located", hits);
    pass2.AddArg("lazy", 1);
  }
  return located;
}

}  // namespace hedgeq::query
