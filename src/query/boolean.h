#ifndef HEDGEQ_QUERY_BOOLEAN_H_
#define HEDGEQ_QUERY_BOOLEAN_H_

#include <memory>
#include <vector>

#include "query/selection.h"

namespace hedgeq::query {

/// Boolean combinations of selection queries. Section 6 shows selection
/// queries capture exactly the MSO-definable queries, and MSO is closed
/// under boolean connectives — these classes make that closure effective:
/// each leaf evaluates independently (two traversals each), and the
/// formula combines per-node verdicts. Negation is relative to element
/// nodes (text nodes are never located).
class BooleanQuery {
 public:
  enum class Kind { kLeaf, kAnd, kOr, kNot };

  static BooleanQuery Leaf(SelectionQuery query);
  static BooleanQuery And(BooleanQuery a, BooleanQuery b);
  static BooleanQuery Or(BooleanQuery a, BooleanQuery b);
  static BooleanQuery Not(BooleanQuery a);

  Kind kind() const { return kind_; }
  const SelectionQuery& leaf() const { return *leaf_; }
  const BooleanQuery& left() const { return *left_; }
  const BooleanQuery& right() const { return *right_; }

  /// The leaves in evaluation order (left-to-right).
  std::vector<const SelectionQuery*> Leaves() const;

  /// Evaluates the formula given per-leaf verdicts (indexed as in
  /// Leaves()).
  bool Evaluate(const std::vector<bool>& leaf_verdicts) const;

 private:
  BooleanQuery() = default;

  Kind kind_ = Kind::kLeaf;
  std::shared_ptr<const SelectionQuery> leaf_;
  std::shared_ptr<const BooleanQuery> left_;
  std::shared_ptr<const BooleanQuery> right_;

  bool EvaluateAt(const std::vector<bool>& verdicts, size_t& next) const;
};

/// Compiles every leaf once; Locate runs each leaf's two traversals and
/// combines per node. O(leaves * nodes) per document.
class BooleanEvaluator {
 public:
  static Result<BooleanEvaluator> Create(BooleanQuery query,
                                         const ExecBudget& budget = {});

  /// located[n] == true iff n is a symbol node and the formula holds for
  /// the leaf verdicts at n.
  std::vector<bool> Locate(const hedge::Hedge& doc) const;

  const BooleanQuery& query() const { return query_; }

 private:
  BooleanEvaluator(BooleanQuery query,
                   std::vector<SelectionEvaluator> evaluators)
      : query_(std::move(query)), evaluators_(std::move(evaluators)) {}

  BooleanQuery query_;
  std::vector<SelectionEvaluator> evaluators_;
};

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_BOOLEAN_H_
