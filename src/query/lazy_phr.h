#ifndef HEDGEQ_QUERY_LAZY_PHR_H_
#define HEDGEQ_QUERY_LAZY_PHR_H_

#include <optional>
#include <vector>

#include "automata/lazy_dha.h"
#include "hedge/hedge.h"
#include "phr/phr.h"
#include "strre/automaton.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::query {

/// Graceful-degradation evaluator for pointed hedge representations: the
/// class-free counterpart of Algorithm 1 that skips every exponential
/// Theorem 4 artifact (no determinization of M, no class product, no mirror
/// DFA). Construction is linear in the representation; evaluation memoizes
/// subset steps in a LazyDha whose cache is LRU-bounded, so memory stays
/// bounded no matter how adversarial the query is — at the price of a
/// per-step set simulation instead of a table lookup.
///
/// Where the eager pipeline summarizes sibling words by equivalence classes
/// and decomposition paths by the mirror DFA N, this evaluator simulates
/// the underlying NFAs directly:
///  1. bottom-up: LazyDha::Run assigns every node its subset of M's NFA
///     states (the Definition 7 state set);
///  2. per sibling group: a forward set simulation of each elder final
///     language and a backward simulation of each reversed younger final
///     language decide, per node and triplet, whether the elder/younger
///     sibling words lie in F_i1/F_i2 (exactly what the saturated classes
///     encode);
///  3. top-down: a set simulation of the reversed triplet regex over the
///     per-node sets of admissible triplets (exactly the letters whose xi
///     image the eager mirror DFA could consume).
/// Locate returns the same vector as PhrEvaluator's eager path; the
/// equivalence is exercised by the lazy-vs-eager randomized tests.
class LazyPhrEvaluator {
 public:
  /// Never exponential: fails only when the triplet expressions themselves
  /// exceed the budget (HRE compilation depth/steps), which no evaluation
  /// strategy could survive.
  static Result<LazyPhrEvaluator> Create(const phr::Phr& phr,
                                         const ExecBudget& budget = {});

  /// located[n] == true iff the envelope of node n matches the
  /// representation; identical to the eager PhrEvaluator::Locate.
  std::vector<bool> Locate(const hedge::Hedge& doc) const;

  /// Lazy-engine expenditure (cache hits/misses/evictions, peak bytes);
  /// fallback_used is set by the caller that chose this engine.
  const automata::EvalStats& stats() const { return lazy_->stats(); }
  const automata::LazyDha& lazy_dha() const { return *lazy_; }

 private:
  LazyPhrEvaluator() = default;

  std::optional<automata::LazyDha> lazy_;  // shared M as an on-the-fly engine
  std::vector<strre::Nfa> elder_final_;    // F_i1 over M's (union NHA) states
  std::vector<strre::Nfa> younger_rev_;    // mirror of F_i2, run right-to-left
  std::vector<bool> elder_any_;            // triplet i has no elder condition
  std::vector<bool> younger_any_;
  std::vector<hedge::SymbolId> labels_;    // triplet labels, by index
  strre::Nfa rev_regex_;  // mirror of the triplet regex, run top-down
};

}  // namespace hedgeq::query

#endif  // HEDGEQ_QUERY_LAZY_PHR_H_
