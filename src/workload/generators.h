#ifndef HEDGEQ_WORKLOAD_GENERATORS_H_
#define HEDGEQ_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "hedge/hedge.h"
#include "util/rng.h"

namespace hedgeq::workload {

/// Uniform random hedges: symbols a0..a{k-1}, text variable "x".
struct RandomHedgeOptions {
  size_t target_nodes = 100;
  size_t num_symbols = 4;
  /// Probability that a new node becomes a text leaf instead of an element.
  double leaf_probability = 0.25;
  /// Bias toward attaching to deeper open nodes (1.0 = uniform over open
  /// nodes; larger values produce deeper documents).
  double depth_bias = 1.0;
};

/// Generates a pseudo-random hedge with exactly target_nodes nodes.
/// Deterministic given the rng state.
hedge::Hedge RandomHedge(Rng& rng, hedge::Vocabulary& vocab,
                         const RandomHedgeOptions& options);

/// Article-like documents matching the paper's motivating examples:
/// article > title, section*; section > title, (para | figure | table |
/// caption | section)*; figures are often immediately followed by captions.
struct ArticleOptions {
  size_t target_nodes = 1000;
  size_t max_section_depth = 4;
  /// Probability that a figure is immediately followed by a caption (the
  /// paper's sibling-order query keys on this).
  double caption_after_figure = 0.6;
};

hedge::Hedge RandomArticle(Rng& rng, hedge::Vocabulary& vocab,
                           const ArticleOptions& options);

/// The symbol names used by RandomArticle, for building queries.
struct ArticleVocab {
  hedge::SymbolId article, title, section, para, figure, table, caption,
      image;
  hedge::VarId text;
  static ArticleVocab Intern(hedge::Vocabulary& vocab);
};

/// A full n-ary tree of the given depth and fanout with a single symbol;
/// used for scaling sweeps where shape must stay fixed.
hedge::Hedge UniformTree(hedge::Vocabulary& vocab, size_t depth,
                         size_t fanout, const std::string& symbol = "a");

}  // namespace hedgeq::workload

#endif  // HEDGEQ_WORKLOAD_GENERATORS_H_
