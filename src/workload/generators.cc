#include "workload/generators.h"

#include <algorithm>

#include "util/check.h"
#include "util/strings.h"

namespace hedgeq::workload {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::Label;
using hedge::NodeId;
using hedge::Vocabulary;

Hedge RandomHedge(Rng& rng, Vocabulary& vocab,
                  const RandomHedgeOptions& options) {
  std::vector<hedge::SymbolId> symbols;
  for (size_t i = 0; i < options.num_symbols; ++i) {
    symbols.push_back(vocab.symbols.Intern(StrCat("a", i)));
  }
  hedge::VarId text = vocab.variables.Intern("x");

  Hedge h;
  std::vector<NodeId> open = {kNullNode};
  for (size_t i = 0; i < options.target_nodes; ++i) {
    // Depth bias: repeatedly prefer later (deeper) open nodes.
    size_t pick = rng.Below(open.size());
    for (double bias = options.depth_bias; bias > 1.0; bias -= 1.0) {
      size_t other = rng.Below(open.size());
      pick = std::max(pick, other);
    }
    NodeId parent = open[pick];
    if (rng.Chance(options.leaf_probability)) {
      h.Append(parent, Label::Variable(text));
    } else {
      NodeId node = h.Append(
          parent, Label::Symbol(symbols[rng.Below(symbols.size())]));
      open.push_back(node);
    }
  }
  return h;
}

ArticleVocab ArticleVocab::Intern(Vocabulary& vocab) {
  ArticleVocab v;
  v.article = vocab.symbols.Intern("article");
  v.title = vocab.symbols.Intern("title");
  v.section = vocab.symbols.Intern("section");
  v.para = vocab.symbols.Intern("para");
  v.figure = vocab.symbols.Intern("figure");
  v.table = vocab.symbols.Intern("table");
  v.caption = vocab.symbols.Intern("caption");
  v.image = vocab.symbols.Intern("image");
  v.text = vocab.variables.Intern("#text");
  return v;
}

namespace {

class ArticleBuilder {
 public:
  ArticleBuilder(Rng& rng, const ArticleVocab& names,
                 const ArticleOptions& options)
      : rng_(rng), names_(names), options_(options) {}

  Hedge Build() {
    NodeId article = Append(kNullNode, names_.article);
    AppendTitle(article);
    while (budget_ > 0) {
      BuildSection(article, 1);
    }
    return std::move(hedge_);
  }

 private:
  NodeId Append(NodeId parent, hedge::SymbolId s) {
    if (budget_ > 0) --budget_;
    return hedge_.Append(parent, Label::Symbol(s));
  }

  void AppendTitle(NodeId parent) {
    NodeId title = Append(parent, names_.title);
    if (budget_ > 0) --budget_;
    hedge_.Append(title, Label::Variable(names_.text));
  }

  void BuildSection(NodeId parent, size_t depth) {
    NodeId section = Append(parent, names_.section);
    AppendTitle(section);
    size_t items = 1 + rng_.Below(6);
    for (size_t i = 0; i < items && budget_ > 0; ++i) {
      switch (rng_.Below(6)) {
        case 0:
        case 1:
        case 2: {  // paragraph with text
          NodeId para = Append(section, names_.para);
          if (budget_ > 0) --budget_;
          hedge_.Append(para, Label::Variable(names_.text));
          break;
        }
        case 3: {  // figure (image inside), maybe followed by a caption
          NodeId figure = Append(section, names_.figure);
          Append(figure, names_.image);
          if (rng_.Chance(options_.caption_after_figure)) {
            NodeId caption = Append(section, names_.caption);
            if (budget_ > 0) --budget_;
            hedge_.Append(caption, Label::Variable(names_.text));
          }
          break;
        }
        case 4: {  // table
          Append(section, names_.table);
          break;
        }
        default: {  // nested section
          if (depth < options_.max_section_depth) {
            BuildSection(section, depth + 1);
          } else {
            NodeId para = Append(section, names_.para);
            if (budget_ > 0) --budget_;
            hedge_.Append(para, Label::Variable(names_.text));
          }
          break;
        }
      }
    }
  }

  Rng& rng_;
  const ArticleVocab& names_;
  const ArticleOptions& options_;
  Hedge hedge_;
  size_t budget_ = 0;

 public:
  void set_budget(size_t b) { budget_ = b; }
};

}  // namespace

Hedge RandomArticle(Rng& rng, Vocabulary& vocab,
                    const ArticleOptions& options) {
  ArticleVocab names = ArticleVocab::Intern(vocab);
  ArticleBuilder builder(rng, names, options);
  builder.set_budget(options.target_nodes);
  return builder.Build();
}

Hedge UniformTree(Vocabulary& vocab, size_t depth, size_t fanout,
                  const std::string& symbol) {
  hedge::SymbolId s = vocab.symbols.Intern(symbol);
  Hedge h;
  std::vector<NodeId> level = {h.Append(kNullNode, Label::Symbol(s))};
  for (size_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId n : level) {
      for (size_t f = 0; f < fanout; ++f) {
        next.push_back(h.Append(n, Label::Symbol(s)));
      }
    }
    level = std::move(next);
  }
  return h;
}

}  // namespace hedgeq::workload
