#include "schema/schema.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "strre/ops.h"
#include "strre/regex.h"
#include "util/strings.h"

namespace hedgeq::schema {

using automata::HState;
using automata::Nha;

std::vector<hedge::SymbolId> Schema::Symbols() const {
  std::vector<hedge::SymbolId> out;
  for (const Nha::Rule& rule : nha_.rules()) out.push_back(rule.symbol);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<hedge::VarId> Schema::Variables() const {
  std::vector<hedge::VarId> out;
  for (const auto& [x, states] : nha_.var_map()) {
    (void)states;
    out.push_back(x);
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

struct Declaration {
  std::string lhs;
  std::string rhs;
  size_t line;
};

// Names must stay single tokens through the line-oriented automaton and
// certificate serializers (which split on whitespace), and must not
// contain this grammar's own structural characters: a stray
// "A = = b<...>" must be a parse error here, not a symbol literally
// named "= b" that no serialized form can round-trip.
bool IsValidName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '=' ||
        c == '<' || c == '>' || c == ';') {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Schema> ParseSchema(std::string_view text, hedge::Vocabulary& vocab) {
  // Split into declarations on newlines and ';'.
  std::vector<Declaration> decls;
  size_t line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    for (const std::string& piece : StrSplit(raw_line, ';')) {
      std::string_view stripped = StripAsciiWhitespace(piece);
      if (stripped.empty() || stripped[0] == '#') continue;
      size_t eq = stripped.find('=');
      if (eq == std::string_view::npos) {
        return Status::InvalidArgument(
            StrCat("line ", line_number, ": expected 'name = ...', got: ",
                   std::string(stripped)));
      }
      Declaration d;
      d.lhs = std::string(StripAsciiWhitespace(stripped.substr(0, eq)));
      d.rhs = std::string(StripAsciiWhitespace(stripped.substr(eq + 1)));
      d.line = line_number;
      if (d.lhs.empty() || d.rhs.empty()) {
        return Status::InvalidArgument(
            StrCat("line ", line_number, ": empty side of '='"));
      }
      if (!IsValidName(d.lhs)) {
        return Status::InvalidArgument(
            StrCat("line ", line_number,
                   ": invalid nonterminal name: ", d.lhs));
      }
      decls.push_back(std::move(d));
    }
  }
  if (decls.empty()) {
    return Status::InvalidArgument("schema has no declarations");
  }

  // First pass: allocate one state per nonterminal.
  Nha nha;
  std::unordered_map<std::string, HState> nonterminals;
  bool has_start = false;
  for (const Declaration& d : decls) {
    if (d.lhs == "start") {
      has_start = true;
      continue;
    }
    if (!nonterminals.contains(d.lhs)) {
      nonterminals.emplace(d.lhs, nha.AddState());
    }
  }
  if (!has_start) {
    return Status::InvalidArgument("schema needs a 'start = ...' declaration");
  }

  // Resolver mapping nonterminal names inside regexes to their states;
  // unknown names are an error, reported via a sentinel collection pass.
  std::vector<std::string> unknown;
  auto resolve = [&](std::string_view name) -> strre::Symbol {
    auto it = nonterminals.find(std::string(name));
    if (it == nonterminals.end()) {
      unknown.emplace_back(name);
      return 0;
    }
    return it->second;
  };

  // Second pass: build rules and the final language.
  strre::Regex start_regex = nullptr;
  for (const Declaration& d : decls) {
    if (d.lhs == "start") {
      Result<strre::Regex> r = strre::ParseRegex(d.rhs, resolve);
      if (!r.ok()) {
        return Status::InvalidArgument(
            StrCat("line ", d.line, ": ", r.status().message()));
      }
      start_regex = start_regex == nullptr
                        ? *r
                        : strre::Alt(start_regex, *r);
      continue;
    }
    HState target = nonterminals.at(d.lhs);
    if (d.rhs[0] == '$') {
      std::string_view var = StripAsciiWhitespace(
          std::string_view(d.rhs).substr(1));
      if (!IsValidName(var)) {
        return Status::InvalidArgument(
            StrCat("line ", d.line,
                   ": '$' needs a valid variable name"));
      }
      nha.AddVariableState(vocab.variables.Intern(var), target);
      continue;
    }
    // Element rule: symbol '<' regex '>'.
    size_t open = d.rhs.find('<');
    if (open == std::string::npos || d.rhs.back() != '>') {
      return Status::InvalidArgument(
          StrCat("line ", d.line,
                 ": element rules have the form symbol<content>: ", d.rhs));
    }
    std::string_view symbol_name =
        StripAsciiWhitespace(std::string_view(d.rhs).substr(0, open));
    if (!IsValidName(symbol_name)) {
      return Status::InvalidArgument(
          StrCat("line ", d.line, ": invalid element name: ",
                 std::string(symbol_name)));
    }
    std::string_view content_text =
        StripAsciiWhitespace(std::string_view(d.rhs).substr(
            open + 1, d.rhs.size() - open - 2));
    strre::Regex content;
    if (content_text.empty()) {
      content = strre::Epsilon();
    } else {
      Result<strre::Regex> r = strre::ParseRegex(content_text, resolve);
      if (!r.ok()) {
        return Status::InvalidArgument(
            StrCat("line ", d.line, ": ", r.status().message()));
      }
      content = *r;
    }
    nha.AddRule(vocab.symbols.Intern(symbol_name),
                strre::CompileRegex(content), target);
  }
  if (!unknown.empty()) {
    return Status::InvalidArgument(
        StrCat("unknown nonterminal(s): ", StrJoin(unknown, ", ")));
  }
  nha.SetFinal(strre::CompileRegex(start_regex));
  return Schema(std::move(nha));
}

std::string FormatSchema(const Schema& schema,
                         const hedge::Vocabulary& vocab) {
  const Nha& nha = schema.nha();
  auto nonterminal = [](strre::Symbol q) { return StrCat("N", q); };

  std::string out;
  out += "start = " +
         strre::RegexToString(strre::NfaToRegex(nha.final_nfa()),
                              nonterminal) +
         "\n";
  for (const Nha::Rule& rule : nha.rules()) {
    strre::Regex content = strre::NfaToRegex(rule.content);
    std::string body;
    if (content->kind() == strre::RegexKind::kEpsilon) {
      body = "";
    } else if (content->kind() == strre::RegexKind::kEmptySet) {
      continue;  // a rule that can never fire
    } else {
      body = strre::RegexToString(content, nonterminal);
    }
    out += StrCat(nonterminal(rule.target), " = ",
                  vocab.symbols.NameOf(rule.symbol), "<", body, ">\n");
  }
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q : states) {
      out += StrCat(nonterminal(q), " = $", vocab.variables.NameOf(x), "\n");
    }
  }
  if (!nha.subst_map().empty()) {
    out += "# note: substitution-symbol states omitted\n";
  }
  return out;
}

}  // namespace hedgeq::schema
