#ifndef HEDGEQ_SCHEMA_SCHEMA_H_
#define HEDGEQ_SCHEMA_SCHEMA_H_

#include <string>
#include <vector>

#include "automata/nha.h"
#include "hedge/hedge.h"
#include "util/status.h"

namespace hedgeq::schema {

/// A schema denotes a hedge regular language, exactly what RELAX/TREX/XML
/// Schema denote (Section 2); internally it is a non-deterministic hedge
/// automaton whose states correspond to the grammar's nonterminals.
class Schema {
 public:
  explicit Schema(automata::Nha nha) : nha_(std::move(nha)) {}

  const automata::Nha& nha() const { return nha_; }
  automata::Nha& mutable_nha() { return nha_; }

  /// Document validity = hedge automaton acceptance.
  bool Validates(const hedge::Hedge& doc) const { return nha_.Accepts(doc); }

  /// True when no document satisfies the schema.
  bool IsEmpty() const { return automata::IsEmptyNha(nha_); }

  /// Element symbols appearing in any rule.
  std::vector<hedge::SymbolId> Symbols() const;
  /// Variables appearing in iota.
  std::vector<hedge::VarId> Variables() const;

 private:
  automata::Nha nha_;
};

/// Parses a RELAX-flavoured grammar, one declaration per line (or ';'):
///   start = <regex over nonterminals>
///   NonTerm = symbol<regex over nonterminals>   -- element rule
///   NonTerm = symbol<>                          -- empty element
///   NonTerm = $var                              -- text rule
/// A nonterminal may have several rules (their languages union). Lines
/// starting with '#' are comments. Example:
///   start   = Article
///   Article = article<Title Section*>
///   Title   = title<Text>
///   Text    = $#text
///   Section = section<Title (Para|Figure)*>
///   Para    = para<Text?>
///   Figure  = figure<>
Result<Schema> ParseSchema(std::string_view text, hedge::Vocabulary& vocab);

/// Renders a schema back to the grammar syntax (states become
/// nonterminals N0, N1, ...; content models via regex state elimination).
/// The output reparses to an equivalent schema; inferred (transformed)
/// schemas can be large and are best pruned first.
std::string FormatSchema(const Schema& schema, const hedge::Vocabulary& vocab);

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_SCHEMA_H_
