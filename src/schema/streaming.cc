#include "schema/streaming.h"

#include <algorithm>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "util/failpoint.h"

namespace hedgeq::schema {

namespace {

// Adapts SAX events onto the streaming automaton run.
class ValidatorHandler : public xml::XmlHandler {
 public:
  explicit ValidatorHandler(const automata::Dha& dha) : run_(dha) {}

  Status StartElement(hedge::SymbolId name) override {
    ++events_;
    ++depth_;
    max_depth_ = std::max(max_depth_, depth_);
    run_.StartElement(name);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId name) override {
    ++events_;
    --depth_;
    run_.EndElement(name);
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view) override {
    ++events_;
    run_.Text(variable);
    return Status::Ok();
  }

  bool Accepted() const { return run_.Accepted(); }
  size_t events() const { return events_; }
  size_t max_depth() const { return max_depth_; }

 private:
  automata::StreamingDhaRun run_;
  size_t events_ = 0;
  size_t depth_ = 0;
  size_t max_depth_ = 0;
};

// Same adapter over the lazy engine: one Bitset per open element instead of
// one table-indexed state.
class LazyValidatorHandler : public xml::XmlHandler {
 public:
  explicit LazyValidatorHandler(const automata::LazyDha& dha) : run_(dha) {}

  Status StartElement(hedge::SymbolId name) override {
    ++events_;
    run_.StartElement(name);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId name) override {
    ++events_;
    run_.EndElement(name);
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view) override {
    ++events_;
    run_.Text(variable);
    return Status::Ok();
  }

  bool Accepted() const { return run_.Accepted(); }
  size_t events() const { return events_; }
  size_t max_depth() const { return run_.max_depth(); }

 private:
  automata::LazyStreamingRun run_;
  size_t events_ = 0;
};

}  // namespace

Result<StreamingValidator> StreamingValidator::Create(
    const Schema& schema, const ExecBudget& budget) {
  HEDGEQ_FAILPOINT("streaming/create");
  StreamingValidator out;
  auto det = automata::Determinize(schema.nha(), budget);
  if (det.ok()) {
    out.dha_ = std::make_shared<automata::Dha>(std::move(det->dha));
    return out;
  }
  if (!IsDegradable(det.status().code())) {
    return det.status();
  }
  // Budget or deadline cut determinization short; the lazy engine needs no
  // preprocessing, so validation can still start immediately.
  automata::LazyDhaOptions opts;
  opts.max_cache_bytes = std::min(budget.max_memory_bytes,
                                  opts.max_cache_bytes);
  out.lazy_ = std::make_shared<automata::LazyDha>(schema.nha(), opts);
  return out;
}

Result<bool> StreamingValidator::Validate(
    std::string_view xml_text, hedge::Vocabulary& vocab,
    const xml::XmlParseOptions& options) const {
  Result<Validation> v = ValidateWithStats(xml_text, vocab, options);
  if (!v.ok()) return v.status();
  return v->valid;
}

Result<StreamingValidator::Validation> StreamingValidator::ValidateWithStats(
    std::string_view xml_text, hedge::Vocabulary& vocab,
    const xml::XmlParseOptions& options) const {
  HEDGEQ_OBS_SPAN(span, obs::spans::kSchemaValidate);
  Validation out;
  if (lazy_ != nullptr) {
    // The lazy engine is shared and const here, so per-run expenditure is
    // computed as a stats delta rather than resetting the shared counters
    // (which would race with concurrent validations).
    const automata::EvalStats before = lazy_->stats();
    LazyValidatorHandler handler(*lazy_);
    Status parse = xml::ParseXmlStream(xml_text, vocab, handler, options);
    if (!parse.ok()) return parse;
    out.valid = handler.Accepted();
    out.stats = automata::EvalStats::Delta(before, lazy_->stats());
    out.stats.fallback_used = true;
    if (obs::Enabled()) {
      HEDGEQ_OBS_COUNT(obs::metrics::kSchemaValidateEvents, handler.events());
      HEDGEQ_OBS_COUNT(obs::metrics::kSchemaValidateFallbackRuns, 1);
      HEDGEQ_OBS_GAUGE_MAX(obs::metrics::kSchemaValidateMaxDepth,
                           handler.max_depth());
      span.AddArg("events", handler.events());
      span.AddArg("valid", out.valid ? 1 : 0);
      span.AddArg("lazy", 1);
    }
    return out;
  }
  ValidatorHandler handler(*dha_);
  Status parse = xml::ParseXmlStream(xml_text, vocab, handler, options);
  if (!parse.ok()) return parse;
  out.valid = handler.Accepted();
  if (obs::Enabled()) {
    HEDGEQ_OBS_COUNT(obs::metrics::kSchemaValidateEvents, handler.events());
    HEDGEQ_OBS_GAUGE_MAX(obs::metrics::kSchemaValidateMaxDepth,
                         handler.max_depth());
    span.AddArg("events", handler.events());
    span.AddArg("valid", out.valid ? 1 : 0);
    span.AddArg("lazy", 0);
  }
  return out;
}

}  // namespace hedgeq::schema
