#include "schema/streaming.h"

#include <algorithm>

#include "util/failpoint.h"

namespace hedgeq::schema {

namespace {

// Adapts SAX events onto the streaming automaton run.
class ValidatorHandler : public xml::XmlHandler {
 public:
  explicit ValidatorHandler(const automata::Dha& dha) : run_(dha) {}

  Status StartElement(hedge::SymbolId name) override {
    run_.StartElement(name);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId name) override {
    run_.EndElement(name);
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view) override {
    run_.Text(variable);
    return Status::Ok();
  }

  bool Accepted() const { return run_.Accepted(); }

 private:
  automata::StreamingDhaRun run_;
};

// Same adapter over the lazy engine: one Bitset per open element instead of
// one table-indexed state.
class LazyValidatorHandler : public xml::XmlHandler {
 public:
  explicit LazyValidatorHandler(const automata::LazyDha& dha) : run_(dha) {}

  Status StartElement(hedge::SymbolId name) override {
    run_.StartElement(name);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId name) override {
    run_.EndElement(name);
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view) override {
    run_.Text(variable);
    return Status::Ok();
  }

  bool Accepted() const { return run_.Accepted(); }

 private:
  automata::LazyStreamingRun run_;
};

}  // namespace

Result<StreamingValidator> StreamingValidator::Create(
    const Schema& schema, const ExecBudget& budget) {
  HEDGEQ_FAILPOINT("streaming/create");
  StreamingValidator out;
  auto det = automata::Determinize(schema.nha(), budget);
  if (det.ok()) {
    out.dha_ = std::make_shared<automata::Dha>(std::move(det->dha));
    return out;
  }
  if (det.status().code() != StatusCode::kResourceExhausted) {
    return det.status();
  }
  automata::LazyDhaOptions opts;
  opts.max_cache_bytes = std::min(budget.max_memory_bytes,
                                  opts.max_cache_bytes);
  out.lazy_ = std::make_shared<automata::LazyDha>(schema.nha(), opts);
  return out;
}

Result<bool> StreamingValidator::Validate(
    std::string_view xml_text, hedge::Vocabulary& vocab,
    const xml::XmlParseOptions& options) const {
  Result<Validation> v = ValidateWithStats(xml_text, vocab, options);
  if (!v.ok()) return v.status();
  return v->valid;
}

Result<StreamingValidator::Validation> StreamingValidator::ValidateWithStats(
    std::string_view xml_text, hedge::Vocabulary& vocab,
    const xml::XmlParseOptions& options) const {
  Validation out;
  if (lazy_ != nullptr) {
    lazy_->ResetStats();
    LazyValidatorHandler handler(*lazy_);
    Status parse = xml::ParseXmlStream(xml_text, vocab, handler, options);
    if (!parse.ok()) return parse;
    out.valid = handler.Accepted();
    out.stats = lazy_->stats();
    out.stats.fallback_used = true;
    return out;
  }
  ValidatorHandler handler(*dha_);
  Status parse = xml::ParseXmlStream(xml_text, vocab, handler, options);
  if (!parse.ok()) return parse;
  out.valid = handler.Accepted();
  return out;
}

}  // namespace hedgeq::schema
