#include "schema/streaming.h"

namespace hedgeq::schema {

namespace {

// Adapts SAX events onto the streaming automaton run.
class ValidatorHandler : public xml::XmlHandler {
 public:
  explicit ValidatorHandler(const automata::Dha& dha) : run_(dha) {}

  Status StartElement(hedge::SymbolId name) override {
    run_.StartElement(name);
    return Status::Ok();
  }
  Status EndElement(hedge::SymbolId name) override {
    run_.EndElement(name);
    return Status::Ok();
  }
  Status Text(hedge::VarId variable, std::string_view) override {
    run_.Text(variable);
    return Status::Ok();
  }

  bool Accepted() const { return run_.Accepted(); }

 private:
  automata::StreamingDhaRun run_;
};

}  // namespace

Result<StreamingValidator> StreamingValidator::Create(
    const Schema& schema, const automata::DeterminizeOptions& options) {
  auto det = automata::Determinize(schema.nha(), options);
  if (!det.ok()) return det.status();
  return StreamingValidator(std::move(det->dha));
}

Result<bool> StreamingValidator::Validate(
    std::string_view xml_text, hedge::Vocabulary& vocab,
    const xml::XmlParseOptions& options) const {
  ValidatorHandler handler(*dha_);
  Status parse = xml::ParseXmlStream(xml_text, vocab, handler, options);
  if (!parse.ok()) return parse;
  return handler.Accepted();
}

}  // namespace hedgeq::schema
