#include "schema/match_identify.h"

#include <algorithm>

#include "query/evaluator.h"
#include "strre/ops.h"
#include "util/check.h"

namespace hedgeq::schema {

using automata::HState;
using hedge::Hedge;
using hedge::kNullNode;
using hedge::NodeId;
using query::CompiledPhr;
using strre::Dfa;
using strre::Nfa;

namespace {

// Shared scaffolding for both constructions.
struct Builder {
  const CompiledPhr& compiled;
  uint32_t num_q;
  uint32_t num_s_total;  // N states + dead
  uint32_t num_sym_ext;  // triplet symbols + "other"
  uint32_t num_classes;
  std::vector<uint32_t> mu;  // [s][c1][si_ext][c2] flattened

  explicit Builder(const CompiledPhr& c)
      : compiled(c),
        num_q(c.dha().num_states()),
        num_s_total(static_cast<uint32_t>(c.mirror().num_states()) + 1),
        num_sym_ext(c.num_symbols() + 1),
        num_classes(c.num_classes()) {
    const uint32_t dead = num_s_total - 1;
    mu.assign(static_cast<size_t>(num_s_total) * num_classes * num_sym_ext *
                  num_classes,
              dead);
    for (uint32_t s = 0; s + 1 < num_s_total; ++s) {
      for (uint32_t c1 = 0; c1 < num_classes; ++c1) {
        for (uint32_t si = 0; si + 1 < num_sym_ext; ++si) {
          for (uint32_t c2 = 0; c2 < num_classes; ++c2) {
            strre::StateId t =
                compiled.mirror().Next(s, compiled.EncodeLetter(c1, si, c2));
            MuRef(s, c1, si, c2) = t == strre::kNoState ? dead : t;
          }
        }
      }
    }
  }

  uint32_t& MuRef(uint32_t s, uint32_t c1, uint32_t si, uint32_t c2) {
    return mu[(s * num_classes + c1) * num_sym_ext * num_classes +
              si * num_classes + c2];
  }
  uint32_t Mu(uint32_t s, uint32_t c1, uint32_t si, uint32_t c2) const {
    return mu[(s * num_classes + c1) * num_sym_ext * num_classes +
              si * num_classes + c2];
  }

  uint32_t EncodeState(uint32_t q, uint32_t s, uint32_t si) const {
    return (q * num_s_total + s) * num_sym_ext + si;
  }
  uint32_t EncodeLeaf(uint32_t q) const {
    return num_q * num_s_total * num_sym_ext + q;
  }
  uint32_t NumStates() const {
    return num_q * num_s_total * num_sym_ext + num_q;
  }
  bool IsLeaf(uint32_t state) const {
    return state >= num_q * num_s_total * num_sym_ext;
  }
  uint32_t QOf(uint32_t state) const {
    return IsLeaf(state) ? state - num_q * num_s_total * num_sym_ext
                         : state / (num_s_total * num_sym_ext);
  }
  uint32_t SOf(uint32_t state) const {
    return (state / num_sym_ext) % num_s_total;
  }
  uint32_t SiOf(uint32_t state) const { return state % num_sym_ext; }

  // The consistency language K_s over state letters: sequences of child
  // states where every non-leaf child's N-component equals
  // mu((prefix class, child symbol, suffix class), s). Realized as the
  // paper's h(Q*) \ union h(C1) Omega h(C2) via one structured bad-word NFA
  // (guess the suffix class at the violating child, verify it afterwards),
  // then complemented.
  Dfa ConsistencyLanguage(uint32_t s) const {
    const strre::Dfa& equiv = compiled.equiv();
    const uint32_t ncls = num_classes;
    Nfa bad;
    // States: [0, ncls) track the prefix class; verify states encode
    // (guessed class, class of what has been read since the violation).
    for (uint32_t c = 0; c < ncls; ++c) bad.AddState(false);
    auto verify_id = [ncls](uint32_t c2, uint32_t cur) {
      return ncls + c2 * ncls + cur;
    };
    for (uint32_t c2 = 0; c2 < ncls; ++c2) {
      for (uint32_t cur = 0; cur < ncls; ++cur) {
        bad.AddState(cur == c2);
      }
    }
    bad.SetStart(equiv.start());

    const uint32_t total_states = NumStates();
    for (uint32_t letter = 0; letter < total_states; ++letter) {
      uint32_t qc = QOf(letter);
      for (uint32_t c = 0; c < ncls; ++c) {
        strre::StateId cnext = equiv.Next(c, qc);
        HEDGEQ_CHECK(cnext != strre::kNoState);
        bad.AddTransition(c, letter, cnext);
        if (!IsLeaf(letter)) {
          uint32_t schild = SOf(letter);
          uint32_t si = SiOf(letter);
          for (uint32_t c2 = 0; c2 < ncls; ++c2) {
            if (schild != Mu(s, c, si, c2)) {
              bad.AddTransition(c, letter, verify_id(c2, equiv.start()));
            }
          }
        }
        for (uint32_t c2 = 0; c2 < ncls; ++c2) {
          bad.AddTransition(verify_id(c2, c), letter,
                            verify_id(c2, cnext));
        }
      }
    }

    std::vector<strre::Symbol> alphabet(total_states);
    for (uint32_t i = 0; i < total_states; ++i) alphabet[i] = i;
    return strre::Complement(strre::Determinize(bad), alphabet);
  }

  // alpha^{-1}(a, q) of the shared DHA M, lifted from Q letters to state
  // letters by the q-projection homomorphism h (each Q letter fans out to
  // every state with that q-component). The lift stays deterministic.
  Dfa LiftedContent(hedge::SymbolId symbol, HState q) const {
    const automata::Dha& dha = compiled.dha();
    Dfa out;
    for (automata::HhState h = 0; h < dha.num_h_states(); ++h) {
      out.AddState(dha.Assign(symbol, h) == q);
    }
    out.SetStart(dha.h_start());
    const uint32_t total_states = NumStates();
    for (automata::HhState h = 0; h < dha.num_h_states(); ++h) {
      for (uint32_t letter = 0; letter < total_states; ++letter) {
        out.SetTransition(h, letter, dha.HNext(h, QOf(letter)));
      }
    }
    return out;
  }

  // All q values alpha(a, .) can produce for this symbol (always includes
  // the sink).
  std::vector<HState> TargetsOf(hedge::SymbolId symbol) const {
    const automata::Dha& dha = compiled.dha();
    std::vector<HState> out = {dha.sink()};
    auto it = dha.assign_map().find(symbol);
    if (it != dha.assign_map().end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

}  // namespace

MatchIdentifying BuildMatchIdentifying(
    const CompiledPhr& compiled, std::span<const hedge::SymbolId> symbols,
    std::span<const hedge::VarId> variables) {
  Builder b(compiled);
  MatchIdentifying out;
  out.compiled_ = &compiled;
  out.num_q_ = b.num_q;
  out.num_s_total_ = b.num_s_total;
  out.num_sym_ext_ = b.num_sym_ext;
  out.num_classes_ = b.num_classes;
  out.mu_ = b.mu;

  automata::Nha& nha = out.nha_;
  nha.AddStates(b.NumStates());

  // Covered symbol set: the requested symbols plus every triplet symbol.
  std::vector<hedge::SymbolId> all_symbols(symbols.begin(), symbols.end());
  for (uint32_t i = 0; i < compiled.num_symbols(); ++i) {
    all_symbols.push_back(compiled.SymbolAt(i));
  }
  std::sort(all_symbols.begin(), all_symbols.end());
  all_symbols.erase(std::unique(all_symbols.begin(), all_symbols.end()),
                    all_symbols.end());

  // K_s per parent N'-state (including dead: children of unlocatable
  // regions must carry the dead component too).
  std::vector<Dfa> consistency;
  consistency.reserve(b.num_s_total);
  for (uint32_t s = 0; s < b.num_s_total; ++s) {
    consistency.push_back(b.ConsistencyLanguage(s));
  }

  for (hedge::SymbolId a : all_symbols) {
    uint32_t si = compiled.SymbolIndex(a);
    uint32_t si_ext = si == CompiledPhr::kNoSymbol ? b.num_sym_ext - 1 : si;
    for (HState q : b.TargetsOf(a)) {
      Dfa lifted = b.LiftedContent(a, q);
      for (uint32_t s = 0; s < b.num_s_total; ++s) {
        Dfa content =
            strre::Product(lifted, consistency[s], strre::BoolOp::kAnd);
        nha.AddRule(a, strre::NfaFromDfa(content),
                    b.EncodeState(q, s, si_ext));
      }
    }
  }

  for (hedge::VarId x : variables) {
    nha.AddVariableState(x, b.EncodeLeaf(compiled.dha().VariableState(x)));
  }

  // F' = K_{s0}: the top-level sequence behaves like children of a parent
  // whose N-state is the start state of N.
  uint32_t s0 = compiled.mirror().num_states() == 0
                    ? b.num_s_total - 1
                    : compiled.mirror().start();
  nha.SetFinal(strre::NfaFromDfa(consistency[s0]));

  out.marked_.assign(b.NumStates(), false);
  for (uint32_t state = 0; state < b.NumStates(); ++state) {
    if (b.IsLeaf(state)) continue;
    uint32_t s = b.SOf(state);
    if (s + 1 < b.num_s_total && compiled.mirror().IsAccepting(s)) {
      out.marked_[state] = true;
    }
  }
  return out;
}

MatchIdentifying BuildMatchIdentifyingPathExpr(
    const CompiledPhr& compiled, std::span<const hedge::SymbolId> symbols,
    std::span<const hedge::VarId> variables) {
  Builder b(compiled);
  HEDGEQ_CHECK_MSG(b.num_classes == 1,
                   "the simplified construction requires a path expression "
                   "(trivial equivalence)");
  MatchIdentifying out;
  out.compiled_ = &compiled;
  out.num_q_ = b.num_q;
  out.num_s_total_ = b.num_s_total;
  out.num_sym_ext_ = b.num_sym_ext;
  out.num_classes_ = 1;
  out.mu_ = b.mu;

  automata::Nha& nha = out.nha_;
  nha.AddStates(b.NumStates());

  std::vector<hedge::SymbolId> all_symbols(symbols.begin(), symbols.end());
  for (uint32_t i = 0; i < compiled.num_symbols(); ++i) {
    all_symbols.push_back(compiled.SymbolAt(i));
  }
  std::sort(all_symbols.begin(), all_symbols.end());
  all_symbols.erase(std::unique(all_symbols.begin(), all_symbols.end()),
                    all_symbols.end());

  // beta^{-1}(a, (s, a)) = ({(s', a') : mu(a', s) = s'} u {bottom})^*:
  // a single-state self-loop NFA per parent N-state — no subtraction, no
  // class product (Section 8's simplification).
  const uint32_t total_states = b.NumStates();
  auto star_content = [&](uint32_t s) {
    Nfa content;
    strre::StateId only = content.AddState(true);
    for (uint32_t letter = 0; letter < total_states; ++letter) {
      if (b.IsLeaf(letter) ||
          b.SOf(letter) == b.Mu(s, 0, b.SiOf(letter), 0)) {
        content.AddTransition(only, letter, only);
      }
    }
    return content;
  };

  for (hedge::SymbolId a : all_symbols) {
    uint32_t si = compiled.SymbolIndex(a);
    uint32_t si_ext = si == CompiledPhr::kNoSymbol ? b.num_sym_ext - 1 : si;
    for (HState q : b.TargetsOf(a)) {
      for (uint32_t s = 0; s < b.num_s_total; ++s) {
        nha.AddRule(a, star_content(s), b.EncodeState(q, s, si_ext));
      }
    }
  }
  for (hedge::VarId x : variables) {
    nha.AddVariableState(x, b.EncodeLeaf(compiled.dha().VariableState(x)));
  }
  uint32_t s0 = compiled.mirror().num_states() == 0
                    ? b.num_s_total - 1
                    : compiled.mirror().start();
  nha.SetFinal(star_content(s0));

  out.marked_.assign(b.NumStates(), false);
  for (uint32_t state = 0; state < b.NumStates(); ++state) {
    if (b.IsLeaf(state)) continue;
    uint32_t s = b.SOf(state);
    if (s + 1 < b.num_s_total && compiled.mirror().IsAccepting(s)) {
      out.marked_[state] = true;
    }
  }
  return out;
}

std::vector<uint32_t> MatchIdentifying::UniqueRunStates(
    const Hedge& doc) const {
  HEDGEQ_CHECK(compiled_ != nullptr);
  const CompiledPhr& compiled = *compiled_;
  std::vector<HState> qstates = compiled.dha().Run(doc);
  query::SiblingClasses classes =
      query::ComputeSiblingClasses(doc, qstates, compiled.equiv());

  std::vector<uint32_t> sstate(doc.num_nodes(), dead_s());
  std::vector<uint32_t> out(doc.num_nodes(), 0);
  uint32_t s0 = compiled.mirror().num_states() == 0
                    ? dead_s()
                    : compiled.mirror().start();
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.label(n).kind != hedge::LabelKind::kSymbol) {
      out[n] = EncodeLeaf(qstates[n]);
      continue;
    }
    NodeId parent = doc.parent(n);
    uint32_t sp = parent == kNullNode ? s0 : sstate[parent];
    uint32_t si = compiled.SymbolIndex(doc.label(n).id);
    uint32_t si_ext = si == CompiledPhr::kNoSymbol ? num_sym_ext_ - 1 : si;
    uint32_t s = MuTotal(sp, classes.elder[n], si_ext, classes.younger[n]);
    sstate[n] = s;
    out[n] = EncodeState(qstates[n], s, si_ext);
  }
  return out;
}

std::vector<bool> MatchIdentifying::UniqueRunMarks(const Hedge& doc) const {
  std::vector<uint32_t> states = UniqueRunStates(doc);
  std::vector<bool> out(doc.num_nodes(), false);
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    out[n] = marked_[states[n]];
  }
  return out;
}

}  // namespace hedgeq::schema
