#ifndef HEDGEQ_SCHEMA_MATCH_IDENTIFY_H_
#define HEDGEQ_SCHEMA_MATCH_IDENTIFY_H_

#include <span>
#include <vector>

#include "automata/nha.h"
#include "hedge/hedge.h"
#include "query/phr_compile.h"

namespace hedgeq::schema {

/// Theorem 5: the match-identifying non-deterministic hedge automaton
/// M-up-e2. Its states are triples (q, s, a) — a state q of the shared
/// deterministic automaton M, a state s of the reverse-simulated string
/// automaton N' (we complete N with an explicit dead state so unlocatable
/// regions still carry a state), and the node's symbol (as a dense triplet
/// index, with one extra "other" bucket for symbols outside the triplet
/// alphabet) — plus leaf states (q, s-bot, a-bot). For any hedge over the
/// covered vocabulary there is exactly one successful computation, and a
/// node is located by the pointed hedge representation iff that computation
/// assigns it a marked state (s in S_fin).
class MatchIdentifying {
 public:
  const automata::Nha& nha() const { return nha_; }
  const std::vector<bool>& marked() const { return marked_; }
  /// Consumes the automaton (invalidates nha()/UniqueRun on this object).
  automata::Nha TakeNha() { return std::move(nha_); }

  uint32_t num_q() const { return num_q_; }
  /// N-states plus the dead completion state (last index).
  uint32_t num_s_total() const { return num_s_total_; }
  uint32_t dead_s() const { return num_s_total_ - 1; }
  /// Triplet symbols plus the trailing "other" bucket.
  uint32_t num_sym_ext() const { return num_sym_ext_; }

  uint32_t EncodeState(uint32_t q, uint32_t s, uint32_t si) const {
    return (q * num_s_total_ + s) * num_sym_ext_ + si;
  }
  uint32_t EncodeLeaf(uint32_t q) const {
    return num_q_ * num_s_total_ * num_sym_ext_ + q;
  }
  bool IsLeafState(uint32_t state) const {
    return state >= num_q_ * num_s_total_ * num_sym_ext_;
  }
  uint32_t QOf(uint32_t state) const {
    return IsLeafState(state)
               ? state - num_q_ * num_s_total_ * num_sym_ext_
               : state / (num_s_total_ * num_sym_ext_);
  }
  uint32_t SOf(uint32_t state) const {
    return (state / num_sym_ext_) % num_s_total_;
  }

  /// mu of the completed N on an extended letter (elder class, extended
  /// symbol index, younger class).
  uint32_t MuTotal(uint32_t s, uint32_t c1, uint32_t si_ext,
                   uint32_t c2) const {
    return mu_[(s * num_classes_ + c1) * num_sym_ext_ * num_classes_ +
               si_ext * num_classes_ + c2];
  }

  /// The unique successful computation's state for every node (test and
  /// debugging aid; computed directly from the Theorem 4 artifacts rather
  /// than by simulating the NHA).
  std::vector<uint32_t> UniqueRunStates(const hedge::Hedge& doc) const;

  /// Marks of the unique run: true iff the node's state is marked.
  std::vector<bool> UniqueRunMarks(const hedge::Hedge& doc) const;

 private:
  friend MatchIdentifying BuildMatchIdentifying(
      const query::CompiledPhr& compiled,
      std::span<const hedge::SymbolId> symbols,
      std::span<const hedge::VarId> variables);
  friend MatchIdentifying BuildMatchIdentifyingPathExpr(
      const query::CompiledPhr& compiled,
      std::span<const hedge::SymbolId> symbols,
      std::span<const hedge::VarId> variables);

  automata::Nha nha_;
  std::vector<bool> marked_;
  uint32_t num_q_ = 0;
  uint32_t num_s_total_ = 0;
  uint32_t num_sym_ext_ = 0;
  uint32_t num_classes_ = 0;
  std::vector<uint32_t> mu_;  // completed transition table of N
  const query::CompiledPhr* compiled_ = nullptr;  // borrowed for UniqueRun
};

/// Builds M-up-e2 covering the given document symbols and variables (the
/// triplet symbols are always covered). The compiled artifacts must outlive
/// the result.
MatchIdentifying BuildMatchIdentifying(
    const query::CompiledPhr& compiled,
    std::span<const hedge::SymbolId> symbols,
    std::span<const hedge::VarId> variables);

/// The simplified construction for traditional path expressions (end of
/// Section 8): the equivalence relation is trivial, so content models are
/// plain star languages and the subtraction machinery disappears. Only
/// valid when the compiled representation came from a path expression
/// (every triplet unconditional). Used by the E7 ablation.
MatchIdentifying BuildMatchIdentifyingPathExpr(
    const query::CompiledPhr& compiled,
    std::span<const hedge::SymbolId> symbols,
    std::span<const hedge::VarId> variables);

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_MATCH_IDENTIFY_H_
