#include "schema/algebra.h"

#include <algorithm>
#include <vector>

#include "automata/analysis.h"
#include "automata/dha.h"
#include "util/failpoint.h"

namespace hedgeq::schema {

namespace {

// Joint element/variable vocabulary of two schemas.
void JointVocabulary(const Schema& a, const Schema& b,
                     std::vector<hedge::SymbolId>* symbols,
                     std::vector<hedge::VarId>* variables) {
  *symbols = a.Symbols();
  std::vector<hedge::SymbolId> sb = b.Symbols();
  symbols->insert(symbols->end(), sb.begin(), sb.end());
  std::sort(symbols->begin(), symbols->end());
  symbols->erase(std::unique(symbols->begin(), symbols->end()),
                 symbols->end());

  *variables = a.Variables();
  std::vector<hedge::VarId> vb = b.Variables();
  variables->insert(variables->end(), vb.begin(), vb.end());
  std::sort(variables->begin(), variables->end());
  variables->erase(std::unique(variables->begin(), variables->end()),
                   variables->end());
}

}  // namespace

Schema IntersectSchemas(const Schema& a, const Schema& b) {
  return Schema(
      automata::PruneNha(automata::IntersectNha(a.nha(), b.nha())));
}

Schema UnionSchemas(const Schema& a, const Schema& b) {
  return Schema(automata::UnionNha(a.nha(), b.nha()));
}

Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                const ExecBudget& budget) {
  BudgetScope scope(budget);
  return ComplementSchema(a, universe_hint, scope);
}

Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                BudgetScope& scope) {
  HEDGEQ_FAILPOINT("schema/complement");
  std::vector<hedge::SymbolId> symbols;
  std::vector<hedge::VarId> variables;
  JointVocabulary(a, universe_hint, &symbols, &variables);

  auto det = automata::Determinize(a.nha(), scope);
  if (!det.ok()) return det.status();
  automata::Dha complement = automata::ComplementDha(det->dha);
  return Schema(automata::DhaToNha(complement, variables, symbols));
}

Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 const ExecBudget& budget) {
  BudgetScope scope(budget);
  return DifferenceSchemas(a, b, scope);
}

Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope) {
  Result<Schema> not_b = ComplementSchema(b, a, scope);
  if (!not_b.ok()) return not_b.status();
  return IntersectSchemas(a, *not_b);
}

Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            const ExecBudget& budget) {
  BudgetScope scope(budget);
  return SchemaIncludes(a, b, scope);
}

Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            BudgetScope& scope) {
  Result<Schema> diff = DifferenceSchemas(a, b, scope);
  if (!diff.ok()) return diff.status();
  return diff->IsEmpty();
}

Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               const ExecBudget& budget) {
  BudgetScope scope(budget);
  return SchemasEquivalent(a, b, scope);
}

Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               BudgetScope& scope) {
  Result<bool> ab = SchemaIncludes(a, b, scope);
  if (!ab.ok()) return ab.status();
  if (!*ab) return false;
  Result<bool> ba = SchemaIncludes(b, a, scope);
  if (!ba.ok()) return ba.status();
  return *ba;
}

}  // namespace hedgeq::schema
