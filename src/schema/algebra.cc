#include "schema/algebra.h"

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "automata/analysis.h"
#include "automata/dha.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::schema {

namespace {

std::atomic<AlgebraValidationHook> g_algebra_hook{nullptr};

// Joint element/variable vocabulary of two schemas.
void JointVocabulary(const Schema& a, const Schema& b,
                     std::vector<hedge::SymbolId>* symbols,
                     std::vector<hedge::VarId>* variables) {
  *symbols = a.Symbols();
  std::vector<hedge::SymbolId> sb = b.Symbols();
  symbols->insert(symbols->end(), sb.begin(), sb.end());
  std::sort(symbols->begin(), symbols->end());
  symbols->erase(std::unique(symbols->begin(), symbols->end()),
                 symbols->end());

  *variables = a.Variables();
  std::vector<hedge::VarId> vb = b.Variables();
  variables->insert(variables->end(), vb.begin(), vb.end());
  std::sort(variables->begin(), variables->end());
  variables->erase(std::unique(variables->begin(), variables->end()),
                   variables->end());
}

// The shared intersect core: pairing product, seeded failpoint, prune.
// Records the pre-prune product and the trim witness into `sink` (when
// non-null); the caller stamps the op kind and fires the hook.
Schema IntersectCore(const automata::Nha& a, const automata::Nha& b,
                     AlgebraWitness* sink) {
  automata::Nha product = automata::IntersectNha(a, b);
  if (!failpoint::Check("algebra/drop-rule").ok() && !product.rules().empty()) {
    // Seeded bug: rebuild the product without its last rule, shrinking the
    // intersection. CheckAlgebra's independent product re-derivation must
    // flag the missing rule (HQV015).
    automata::Nha corrupt;
    corrupt.AddStates(product.num_states());
    for (size_t i = 0; i + 1 < product.rules().size(); ++i) {
      const automata::Nha::Rule& rule = product.rules()[i];
      corrupt.AddRule(rule.symbol, rule.content, rule.target);
    }
    for (const auto& [x, states] : product.var_map()) {
      for (automata::HState q : states) corrupt.AddVariableState(x, q);
    }
    for (const auto& [z, states] : product.subst_map()) {
      for (automata::HState q : states) corrupt.AddSubstState(z, q);
    }
    corrupt.SetFinal(product.final_nfa());
    product = std::move(corrupt);
  }
  automata::TrimWitness trim;
  Schema out(automata::PruneNha(product, nullptr,
                                sink != nullptr ? &trim : nullptr));
  if (sink != nullptr) {
    sink->product = std::move(product);
    sink->trim = std::move(trim);
  }
  return out;
}

void MaybeValidate(const Schema& a, const Schema& b, const Schema& out,
                   const AlgebraWitness* sink) {
  AlgebraValidationHook hook = g_algebra_hook.load(std::memory_order_relaxed);
  if (hook == nullptr || sink == nullptr) return;
  Status verdict = hook(a, b, out, *sink);
  HEDGEQ_CHECK_MSG(verdict.ok(), verdict.ToString().c_str());
}

}  // namespace

void SetAlgebraValidationHook(AlgebraValidationHook hook) {
  g_algebra_hook.store(hook, std::memory_order_relaxed);
}

AlgebraValidationHook GetAlgebraValidationHook() {
  return g_algebra_hook.load(std::memory_order_relaxed);
}

Schema IntersectSchemas(const Schema& a, const Schema& b) {
  return IntersectSchemas(a, b, nullptr);
}

Schema IntersectSchemas(const Schema& a, const Schema& b,
                        AlgebraWitness* witness) {
  AlgebraWitness local;
  AlgebraWitness* sink =
      witness != nullptr
          ? witness
          : (GetAlgebraValidationHook() != nullptr ? &local : nullptr);
  Schema out = IntersectCore(a.nha(), b.nha(), sink);
  if (sink != nullptr) sink->op = AlgebraOp::kIntersect;
  MaybeValidate(a, b, out, sink);
  return out;
}

Schema UnionSchemas(const Schema& a, const Schema& b) {
  return UnionSchemas(a, b, nullptr);
}

Schema UnionSchemas(const Schema& a, const Schema& b,
                    AlgebraWitness* witness) {
  AlgebraWitness local;
  AlgebraWitness* sink =
      witness != nullptr
          ? witness
          : (GetAlgebraValidationHook() != nullptr ? &local : nullptr);
  Schema out(automata::UnionNha(a.nha(), b.nha()));
  if (sink != nullptr) {
    sink->op = AlgebraOp::kUnion;
    // CopyNhaInto appends, so the copies sit at offset 0 and |Qa|.
    sink->offset_a = 0;
    sink->offset_b = static_cast<automata::HState>(a.nha().num_states());
  }
  MaybeValidate(a, b, out, sink);
  return out;
}

Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                const ExecBudget& budget) {
  BudgetScope scope(budget);
  return ComplementSchema(a, universe_hint, scope);
}

Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                BudgetScope& scope) {
  HEDGEQ_FAILPOINT("schema/complement");
  std::vector<hedge::SymbolId> symbols;
  std::vector<hedge::VarId> variables;
  JointVocabulary(a, universe_hint, &symbols, &variables);

  auto det = automata::Determinize(a.nha(), scope);
  if (!det.ok()) return det.status();
  automata::Dha complement = automata::ComplementDha(det->dha);
  return Schema(automata::DhaToNha(complement, variables, symbols));
}

Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 const ExecBudget& budget) {
  BudgetScope scope(budget);
  return DifferenceSchemas(a, b, scope);
}

Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope) {
  return DifferenceSchemas(a, b, scope, nullptr);
}

Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope,
                                 AlgebraWitness* witness) {
  AlgebraWitness local;
  AlgebraWitness* sink =
      witness != nullptr
          ? witness
          : (GetAlgebraValidationHook() != nullptr ? &local : nullptr);
  Result<Schema> not_b = ComplementSchema(b, a, scope);
  if (!not_b.ok()) return not_b.status();
  Schema out = IntersectCore(a.nha(), not_b->nha(), sink);
  if (sink != nullptr) {
    sink->op = AlgebraOp::kDifference;
    sink->complement = not_b->nha();
  }
  MaybeValidate(a, b, out, sink);
  return out;
}

Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            const ExecBudget& budget) {
  BudgetScope scope(budget);
  return SchemaIncludes(a, b, scope);
}

Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            BudgetScope& scope) {
  Result<Schema> diff = DifferenceSchemas(a, b, scope);
  if (!diff.ok()) return diff.status();
  return diff->IsEmpty();
}

Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               const ExecBudget& budget) {
  BudgetScope scope(budget);
  return SchemasEquivalent(a, b, scope);
}

Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               BudgetScope& scope) {
  Result<bool> ab = SchemaIncludes(a, b, scope);
  if (!ab.ok()) return ab.status();
  if (!*ab) return false;
  Result<bool> ba = SchemaIncludes(b, a, scope);
  if (!ba.ok()) return ba.status();
  return *ba;
}

}  // namespace hedgeq::schema
