#ifndef HEDGEQ_SCHEMA_STREAMING_H_
#define HEDGEQ_SCHEMA_STREAMING_H_

#include <memory>
#include <string_view>

#include "automata/determinize.h"
#include "automata/lazy_dha.h"
#include "automata/streaming.h"
#include "schema/schema.h"
#include "util/budget.h"
#include "xml/xml.h"

namespace hedgeq::schema {

/// Streaming schema validation: determinize once, then validate XML text of
/// any size in O(element depth) memory — no tree is built. The RELAX-style
/// use case of hedge automata.
///
/// Robustness: when eager determinization exceeds `budget`, Create degrades
/// to an on-the-fly subset-simulation engine (automata::LazyDha) whose
/// memoization cache is LRU-bounded, so the validator always comes up —
/// validation is then set-simulation per event instead of a table lookup.
/// fallback_used() tells which engine answered; ValidateWithStats also
/// reports the lazy engine's expenditure.
class StreamingValidator {
 public:
  /// Determinizes the schema (worst-case exponential preprocessing; real
  /// schemas are small — experiment E3). On kResourceExhausted falls back
  /// to the lazy engine; other errors propagate.
  static Result<StreamingValidator> Create(const Schema& schema,
                                           const ExecBudget& budget = {});

  /// Parses and validates in one pass. kInvalidArgument for malformed XML;
  /// otherwise the validity verdict.
  Result<bool> Validate(std::string_view xml_text, hedge::Vocabulary& vocab,
                        const xml::XmlParseOptions& options = {}) const;

  /// As Validate, also reporting which engine ran and what it spent.
  struct Validation {
    bool valid = false;
    automata::EvalStats stats;
  };
  Result<Validation> ValidateWithStats(
      std::string_view xml_text, hedge::Vocabulary& vocab,
      const xml::XmlParseOptions& options = {}) const;

  /// True when the eager determinization blew the budget and the lazy
  /// engine validates instead.
  bool fallback_used() const { return lazy_ != nullptr; }

  /// The eager automaton; only callable when !fallback_used().
  const automata::Dha& dha() const { return *dha_; }

 private:
  StreamingValidator() = default;

  // Exactly one of the two engines is set.
  std::shared_ptr<const automata::Dha> dha_;
  std::shared_ptr<const automata::LazyDha> lazy_;
};

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_STREAMING_H_
