#ifndef HEDGEQ_SCHEMA_STREAMING_H_
#define HEDGEQ_SCHEMA_STREAMING_H_

#include <memory>
#include <string_view>

#include "automata/determinize.h"
#include "automata/streaming.h"
#include "schema/schema.h"
#include "xml/xml.h"

namespace hedgeq::schema {

/// Streaming schema validation: determinize once, then validate XML text of
/// any size in O(element depth) memory — no tree is built. The RELAX-style
/// use case of hedge automata.
class StreamingValidator {
 public:
  /// Determinizes the schema (worst-case exponential preprocessing; real
  /// schemas are small — experiment E3).
  static Result<StreamingValidator> Create(
      const Schema& schema, const automata::DeterminizeOptions& options = {});

  /// Parses and validates in one pass. kInvalidArgument for malformed XML;
  /// otherwise the validity verdict.
  Result<bool> Validate(std::string_view xml_text, hedge::Vocabulary& vocab,
                        const xml::XmlParseOptions& options = {}) const;

  const automata::Dha& dha() const { return *dha_; }

 private:
  explicit StreamingValidator(automata::Dha dha)
      : dha_(std::make_shared<automata::Dha>(std::move(dha))) {}

  std::shared_ptr<const automata::Dha> dha_;
};

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_STREAMING_H_
