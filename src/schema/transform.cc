#include "schema/transform.h"

#include <atomic>
#include <deque>
#include <functional>

#include "automata/analysis.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::schema {

using automata::HState;
using automata::Nha;
using strre::Nfa;

namespace {

// Letters appearing on some accepting path of `nfa` that uses only
// derivable letters.
Bitset UsableLetters(const Nfa& nfa, const Bitset& derivable,
                     size_t num_letters) {
  Bitset usable(num_letters);
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return usable;

  auto letter_ok = [&](strre::Symbol p) {
    return p < derivable.size() && derivable.Test(p);
  };

  // Forward reachability over derivable letters.
  Bitset fwd(nfa.num_states());
  std::deque<strre::StateId> queue;
  fwd.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    strre::StateId s = queue.front();
    queue.pop_front();
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol) && !fwd.Test(t.to)) {
        fwd.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      if (!fwd.Test(t)) {
        fwd.Set(t);
        queue.push_back(t);
      }
    }
  }

  // Backward reachability from accepting states (reverse the edges).
  std::vector<std::vector<strre::StateId>> rev(nfa.num_states());
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol)) rev[t.to].push_back(s);
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) rev[t].push_back(s);
  }
  Bitset bwd(nfa.num_states());
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsAccepting(s) && !bwd.Test(s)) {
      bwd.Set(s);
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    strre::StateId s = queue.front();
    queue.pop_front();
    for (strre::StateId t : rev[s]) {
      if (!bwd.Test(t)) {
        bwd.Set(t);
        queue.push_back(t);
      }
    }
  }

  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (!fwd.Test(s)) continue;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol) && bwd.Test(t.to) && t.symbol < num_letters) {
        usable.Set(t.symbol);
      }
    }
  }
  return usable;
}

enum class LetterAction { kKeep, kDrop, kEpsilon };

// Rewrites transitions per letter: keep, drop, or turn into an epsilon.
Nfa TransformLetters(const Nfa& in,
                     const std::function<LetterAction(strre::Symbol)>& action) {
  Nfa out;
  for (strre::StateId s = 0; s < in.num_states(); ++s) {
    out.AddState(in.IsAccepting(s));
  }
  if (in.start() != strre::kNoState) out.SetStart(in.start());
  for (strre::StateId s = 0; s < in.num_states(); ++s) {
    for (const Nfa::Transition& t : in.TransitionsFrom(s)) {
      switch (action(t.symbol)) {
        case LetterAction::kKeep:
          out.AddTransition(s, t.symbol, t.to);
          break;
        case LetterAction::kDrop:
          break;
        case LetterAction::kEpsilon:
          out.AddEpsilon(s, t.to);
          break;
      }
    }
    for (strre::StateId t : in.EpsilonsFrom(s)) out.AddEpsilon(s, t);
  }
  return out;
}

// One marked automaton layered onto the product: M-up-e2 (unique run, marks
// = located by the envelope), or M-down-e1 as an NHA (deterministic, marks
// = odd pair ids = subhedge in L(e1)).
struct Layer {
  Nha nha;
  std::vector<bool> marked;
};

// The Theorem 3/5 layers of one selection query over the schema vocabulary.
Result<std::vector<Layer>> QueryLayers(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options) {
  std::vector<hedge::SymbolId> symbols = input.Symbols();
  std::vector<hedge::VarId> variables = input.Variables();

  std::vector<Layer> layers;

  Result<query::CompiledPhr> compiled =
      query::CompilePhr(query.envelope, options);
  if (!compiled.ok()) return compiled.status();
  MatchIdentifying up = BuildMatchIdentifying(*compiled, symbols, variables);
  std::vector<bool> up_marked = up.marked();
  layers.push_back(Layer{up.TakeNha(), std::move(up_marked)});

  if (query.subhedge != nullptr) {
    auto det = automata::Determinize(hre::CompileHre(query.subhedge), options);
    if (!det.ok()) return det.status();
    automata::Dha marked_dha = automata::BuildMarkedDha(det->dha, symbols);
    Nha down = automata::DhaToNha(marked_dha, variables);
    std::vector<bool> down_marked(down.num_states(), false);
    for (size_t p = 1; p < down.num_states(); p += 2) down_marked[p] = true;
    layers.push_back(Layer{std::move(down), std::move(down_marked)});
  }
  return layers;
}

// Schema x layer1 x layer2 x ...; each layer's marks lifted to product ids.
struct LayeredProduct {
  Nha nha;
  std::vector<std::vector<bool>> layer_marks;
};

// Prunes useless states, renumbering all mark vectors along.
void PruneLayered(Nha& nha, std::vector<std::vector<bool>>& marks) {
  std::vector<HState> mapping;
  Nha pruned = automata::PruneNha(nha, &mapping);
  for (std::vector<bool>& m : marks) {
    std::vector<bool> remapped(pruned.num_states(), false);
    for (size_t old = 0; old < mapping.size(); ++old) {
      if (mapping[old] != strre::kNoState && m[old]) {
        remapped[mapping[old]] = true;
      }
    }
    m = std::move(remapped);
  }
  nha = std::move(pruned);
}

LayeredProduct ComposeProduct(const Nha& schema_nha,
                              std::vector<Layer> layers) {
  LayeredProduct out;
  out.nha = schema_nha;
  for (Layer& layer : layers) {
    // Prune the layer itself first (the Theorem 5 constructions carry many
    // symbol-mismatched state combinations that no document ever uses).
    {
      std::vector<HState> mapping;
      Nha pruned = automata::PruneNha(layer.nha, &mapping);
      std::vector<bool> remapped(pruned.num_states(), false);
      for (size_t old = 0; old < mapping.size(); ++old) {
        if (mapping[old] != strre::kNoState && layer.marked[old]) {
          remapped[mapping[old]] = true;
        }
      }
      layer.nha = std::move(pruned);
      layer.marked = std::move(remapped);
    }
    const size_t nl = layer.nha.num_states();
    Nha next = automata::IntersectNha(out.nha, layer.nha);
    // Existing marks: id = p_old * nl + l.
    for (std::vector<bool>& marks : out.layer_marks) {
      std::vector<bool> lifted(next.num_states(), false);
      for (size_t p = 0; p < next.num_states(); ++p) {
        lifted[p] = marks[p / nl];
      }
      marks = std::move(lifted);
    }
    std::vector<bool> own(next.num_states(), false);
    for (size_t p = 0; p < next.num_states(); ++p) {
      own[p] = layer.marked[p % nl];
    }
    out.layer_marks.push_back(std::move(own));
    out.nha = std::move(next);
    // And keep the running product small.
    PruneLayered(out.nha, out.layer_marks);
  }
  return out;
}

// AND of a group of layer marks.
std::vector<bool> AndMarks(const LayeredProduct& prod, size_t begin,
                           size_t end) {
  std::vector<bool> out(prod.nha.num_states(), true);
  for (size_t p = 0; p < out.size(); ++p) {
    for (size_t l = begin; l < end; ++l) {
      if (!prod.layer_marks[l][p]) {
        out[p] = false;
        break;
      }
    }
  }
  return out;
}

// Synthesizes a document whose (unique up to schema nondeterminism)
// accepting computation uses a `target` state, returning it with the node
// that carries the state. nullopt when no such document exists.
std::optional<SampleMatch> SampleFromProduct(
    const Nha& nha, const std::vector<bool>& target) {
  const size_t n = nha.num_states();
  std::vector<std::optional<hedge::Hedge>> witness =
      automata::StateWitnesses(nha);
  Bitset derivable(n == 0 ? 1 : n);
  for (size_t q = 0; q < n; ++q) {
    if (witness[q].has_value()) derivable.Set(static_cast<uint32_t>(q));
  }

  // Co-reachability with parent links.
  struct Via {
    bool is_final = false;
    size_t rule = 0;
  };
  std::vector<std::optional<Via>> via(n);
  Bitset from_final = UsableLetters(nha.final_nfa(), derivable, n);
  for (uint32_t p : from_final.ToVector()) via[p] = Via{true, 0};
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < nha.rules().size(); ++r) {
      const Nha::Rule& rule = nha.rules()[r];
      if (!via[rule.target].has_value()) continue;
      Bitset usable = UsableLetters(rule.content, derivable, n);
      for (uint32_t p : usable.ToVector()) {
        if (!via[p].has_value()) {
          via[p] = Via{false, r};
          changed = true;
        }
      }
    }
  }

  uint32_t picked = UINT32_MAX;
  for (size_t q = 0; q < n; ++q) {
    if (target[q] && witness[q].has_value() && via[q].has_value()) {
      picked = static_cast<uint32_t>(q);
      break;
    }
  }
  if (picked == UINT32_MAX) return std::nullopt;

  // Build bottom-up: the witness subtree, then one wrapping level per
  // context-chain step. All hedges are built in document order, so copied
  // node ids shift by a constant base.
  hedge::Hedge current = *witness[picked];
  hedge::NodeId located = 0;
  uint32_t state = picked;
  while (!via[state]->is_final) {
    const Nha::Rule& rule = nha.rules()[via[state]->rule];
    std::optional<std::vector<strre::Symbol>> word =
        automata::ShortestWordContaining(rule.content, derivable, state);
    HEDGEQ_CHECK_MSG(word.has_value(), "co-reach chain must be realizable");
    hedge::Hedge next;
    hedge::NodeId root =
        next.Append(hedge::kNullNode, hedge::Label::Symbol(rule.symbol));
    bool placed = false;
    for (strre::Symbol q : *word) {
      if (!placed && q == state) {
        hedge::NodeId base = static_cast<hedge::NodeId>(next.num_nodes());
        next.AppendHedgeCopy(root, current);
        located = base + located;
        placed = true;
      } else {
        next.AppendHedgeCopy(root, *witness[q]);
      }
    }
    current = std::move(next);
    state = rule.target;
  }
  std::optional<std::vector<strre::Symbol>> top =
      automata::ShortestWordContaining(nha.final_nfa(), derivable, state);
  HEDGEQ_CHECK_MSG(top.has_value(), "final chain must be realizable");
  hedge::Hedge doc;
  bool placed = false;
  for (strre::Symbol q : *top) {
    if (!placed && q == state) {
      hedge::NodeId base = static_cast<hedge::NodeId>(doc.num_nodes());
      doc.AppendHedgeCopy(hedge::kNullNode, current);
      located = base + located;
      placed = true;
    } else {
      doc.AppendHedgeCopy(hedge::kNullNode, *witness[q]);
    }
  }
  return SampleMatch{std::move(doc), located};
}

}  // namespace

Result<MatchIdentifyingProduct> BuildMatchIdentifyingProduct(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kSchemaTransform);
  HEDGEQ_OBS_COUNT(obs::metrics::kSchemaTransformRuns, 1);
  Result<std::vector<Layer>> layers = QueryLayers(input, query, options);
  if (!layers.ok()) return layers.status();
  LayeredProduct prod =
      ComposeProduct(input.nha(), std::move(layers).value());
  MatchIdentifyingProduct out;
  out.marked = AndMarks(prod, 0, prod.layer_marks.size());
  out.nha = std::move(prod.nha);
  if (obs::Enabled()) {
    span.AddArg("product_states", out.nha.num_states());
  }
  return out;
}

Result<MatchIdentifyingProduct> BuildMatchIdentifyingProduct(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options, const lint::LintOptions& preflight,
    std::vector<lint::Diagnostic>* diagnostics) {
  std::vector<lint::Diagnostic> local;
  std::vector<lint::Diagnostic>& sink =
      diagnostics != nullptr ? *diagnostics : local;
  const size_t begin = sink.size();

  if (automata::IsEmptyNha(input.nha())) {
    sink.push_back(lint::Diagnostic{
        lint::Severity::kError, lint::DiagnosticCode::kEmptySchema, "schema",
        "no document satisfies this schema, so the transform output is "
        "trivially empty",
        "fix the schema before deriving output schemas from it"});
    if (preflight.fail_on_error) {
      return lint::ErrorStatus(sink, begin);
    }
  }

  Result<MatchIdentifyingProduct> product =
      BuildMatchIdentifyingProduct(input, query, options);
  if (!product.ok()) return product.status();

  // The query selects something under the schema iff some marked product
  // state survives trimming (is derivable by a document and usable by an
  // accepting computation) — exactly the Section 8 emptiness question.
  std::vector<automata::HState> mapping;
  automata::Nha trimmed = automata::PruneNha(product->nha, &mapping);
  (void)trimmed;
  bool satisfiable = false;
  for (size_t q = 0; q < product->marked.size(); ++q) {
    if (product->marked[q] && mapping[q] != strre::kNoState) {
      satisfiable = true;
      break;
    }
  }
  if (!satisfiable) {
    sink.push_back(lint::Diagnostic{
        lint::Severity::kError,
        lint::DiagnosticCode::kQueryUnsatisfiableUnderSchema,
        "query under schema",
        "the query can never select any node of any schema-valid document "
        "(match-identifying product has no usable marked state)",
        "the match pattern contradicts the schema; check element names and "
        "sibling/ancestor conditions against the grammar"});
    if (preflight.fail_on_error) {
      return lint::ErrorStatus(sink, begin);
    }
  }
  return product;
}

namespace {

// "Use marked states as final state sequences — only those from which
// final state sequences can be reached" (and that some document derives).
Schema SelectFromMarkedProduct(Nha nha, const std::vector<bool>& marked) {
  const size_t n = nha.num_states();
  Bitset derivable = automata::ReachableStates(nha);

  // Co-reachability: states that occur in some accepting computation.
  Bitset co = UsableLetters(nha.final_nfa(), derivable, n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : nha.rules()) {
      if (!co.Test(rule.target)) continue;
      Bitset usable = UsableLetters(rule.content, derivable, n);
      Bitset before = co;
      co |= usable;
      if (!(co == before)) changed = true;
    }
  }

  std::vector<strre::Regex> finals;
  for (size_t p = 0; p < n; ++p) {
    if (marked[p] && derivable.Test(p) && co.Test(p)) {
      finals.push_back(strre::Sym(static_cast<strre::Symbol>(p)));
    }
  }
  nha.SetFinal(strre::CompileRegex(strre::AltAll(finals)));
  return Schema(std::move(nha));
}

// Layered product for a boolean query: every leaf contributes its layers;
// a state is marked when the formula holds over the leaves' (AND-of-layer)
// verdicts.
Result<MatchIdentifyingProduct> BuildBooleanProduct(
    const Schema& input, const query::BooleanQuery& query,
    const ExecBudget& options) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kSchemaTransform);
  HEDGEQ_OBS_COUNT(obs::metrics::kSchemaTransformRuns, 1);
  std::vector<Layer> all;
  std::vector<std::pair<size_t, size_t>> groups;  // per-leaf layer ranges
  for (const query::SelectionQuery* leaf : query.Leaves()) {
    Result<std::vector<Layer>> layers = QueryLayers(input, *leaf, options);
    if (!layers.ok()) return layers.status();
    size_t begin = all.size();
    for (Layer& layer : *layers) all.push_back(std::move(layer));
    groups.emplace_back(begin, all.size());
  }
  LayeredProduct prod = ComposeProduct(input.nha(), std::move(all));

  std::vector<std::vector<bool>> leaf_marks;
  leaf_marks.reserve(groups.size());
  for (const auto& [begin, end] : groups) {
    leaf_marks.push_back(AndMarks(prod, begin, end));
  }
  MatchIdentifyingProduct out;
  out.marked.assign(prod.nha.num_states(), false);
  std::vector<bool> verdicts(groups.size(), false);
  for (size_t p = 0; p < out.marked.size(); ++p) {
    for (size_t l = 0; l < groups.size(); ++l) verdicts[l] = leaf_marks[l][p];
    out.marked[p] = query.Evaluate(verdicts);
  }
  out.nha = std::move(prod.nha);
  return out;
}

}  // namespace

Result<Schema> SelectOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildMatchIdentifyingProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  return SelectFromMarkedProduct(std::move(prod->nha), prod->marked);
}

Result<Schema> SelectOutputSchemaBoolean(
    const Schema& input, const query::BooleanQuery& query,
    const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildBooleanProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  return SelectFromMarkedProduct(std::move(prod->nha), prod->marked);
}

Result<std::optional<SampleMatch>> SampleMatchingDocumentBoolean(
    const Schema& input, const query::BooleanQuery& query,
    const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildBooleanProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  return SampleFromProduct(prod->nha, prod->marked);
}

Result<Schema> DeleteOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildMatchIdentifyingProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  Nha nha = std::move(prod->nha);
  Bitset derivable = automata::ReachableStates(nha);

  auto action = [&](strre::Symbol p) {
    if (p >= derivable.size() || !derivable.Test(p)) {
      return LetterAction::kDrop;  // never occurs in a valid document
    }
    if (prod->marked[p]) return LetterAction::kEpsilon;  // located: deleted
    return LetterAction::kKeep;
  };

  Nha out;
  out.AddStates(nha.num_states());
  for (const Nha::Rule& rule : nha.rules()) {
    out.AddRule(rule.symbol, TransformLetters(rule.content, action),
                rule.target);
  }
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q : states) out.AddVariableState(x, q);
  }
  for (const auto& [z, states] : nha.subst_map()) {
    for (HState q : states) out.AddSubstState(z, q);
  }
  out.SetFinal(TransformLetters(nha.final_nfa(), action));
  return Schema(std::move(out));
}

Result<std::optional<SampleMatch>> SampleMatchingDocument(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildMatchIdentifyingProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  return SampleFromProduct(prod->nha, prod->marked);
}

Result<ContainmentResult> QueryContainment(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2,
    const ExecBudget& options) {
  return QueryContainment(input, q1, q2, options, nullptr);
}

namespace {
std::atomic<ContainmentValidationHook> g_containment_hook{nullptr};
}  // namespace

void SetContainmentValidationHook(ContainmentValidationHook hook) {
  g_containment_hook.store(hook, std::memory_order_relaxed);
}

ContainmentValidationHook GetContainmentValidationHook() {
  return g_containment_hook.load(std::memory_order_relaxed);
}

Result<ContainmentResult> QueryContainment(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2, const ExecBudget& options,
    ContainmentWitness* witness) {
  Result<std::vector<Layer>> layers1 = QueryLayers(input, q1, options);
  if (!layers1.ok()) return layers1.status();
  Result<std::vector<Layer>> layers2 = QueryLayers(input, q2, options);
  if (!layers2.ok()) return layers2.status();

  size_t split = layers1->size();
  std::vector<Layer> all = std::move(layers1).value();
  for (Layer& layer : *layers2) all.push_back(std::move(layer));
  LayeredProduct prod = ComposeProduct(input.nha(), std::move(all));

  std::vector<bool> marked1 = AndMarks(prod, 0, split);
  std::vector<bool> marked2 =
      AndMarks(prod, split, prod.layer_marks.size());
  // Counterexample states: q1 locates here, q2 does not. Both queries'
  // layers are deterministic per document, so marks are
  // computation-independent and the check is sound.
  std::vector<bool> target(prod.nha.num_states(), false);
  bool any = false;
  for (size_t p = 0; p < target.size(); ++p) {
    target[p] = marked1[p] && !marked2[p];
    any = any || target[p];
  }
  ContainmentResult result{true, std::nullopt};
  if (any) {
    std::optional<SampleMatch> sample = SampleFromProduct(prod.nha, target);
    if (sample.has_value()) {
      result.contained = false;
      result.counterexample = std::move(sample);
    }
  }
  // Seeded-bug failpoint for the translation-validation tests: invert the
  // verdict so CheckContainment can prove it catches a lying decision
  // procedure. Check() is used as a probe — the armed "failure" flips the
  // bit instead of propagating. Flipping to "contained" also drops the
  // counterexample (a contained verdict carrying one would be caught by
  // shape alone); flipping to "not contained" leaves the counterexample
  // absent, the other half of the contract.
  if (!failpoint::Check("containment/flip-verdict").ok()) {
    result.contained = !result.contained;
    if (result.contained) result.counterexample.reset();
  }
  const bool want_witness =
      witness != nullptr || GetContainmentValidationHook() != nullptr;
  if (want_witness) {
    ContainmentWitness local{prod.nha, std::move(marked1), std::move(marked2)};
    if (ContainmentValidationHook hook = GetContainmentValidationHook()) {
      Status verdict = hook(input, q1, q2, result, local);
      if (!verdict.ok()) return verdict;
    }
    if (witness != nullptr) *witness = std::move(local);
  }
  return result;
}

Result<bool> QueriesEquivalentUnderSchema(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2,
    const ExecBudget& options) {
  Result<ContainmentResult> forward = QueryContainment(input, q1, q2, options);
  if (!forward.ok()) return forward.status();
  if (!forward->contained) return false;
  Result<ContainmentResult> backward =
      QueryContainment(input, q2, q1, options);
  if (!backward.ok()) return backward.status();
  return backward->contained;
}

Result<Schema> RenameOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  hedge::SymbolId new_name,
                                  const ExecBudget& options) {
  Result<MatchIdentifyingProduct> prod =
      BuildMatchIdentifyingProduct(input, query, options);
  if (!prod.ok()) return prod.status();
  const Nha& nha = prod->nha;

  // A node is located iff its state is marked (the product's computations
  // agree on marks), so relabeling located nodes is just re-symboling the
  // rules that produce marked states. Contents and the final language are
  // untouched: positions and subtrees are preserved.
  Nha out;
  out.AddStates(nha.num_states());
  for (const Nha::Rule& rule : nha.rules()) {
    hedge::SymbolId symbol =
        prod->marked[rule.target] ? new_name : rule.symbol;
    out.AddRule(symbol, rule.content, rule.target);
  }
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q : states) out.AddVariableState(x, q);
  }
  for (const auto& [z, states] : nha.subst_map()) {
    for (HState q : states) out.AddSubstState(z, q);
  }
  out.SetFinal(nha.final_nfa());
  return Schema(std::move(out));
}

}  // namespace hedgeq::schema
