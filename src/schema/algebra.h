#ifndef HEDGEQ_SCHEMA_ALGEBRA_H_
#define HEDGEQ_SCHEMA_ALGEBRA_H_

#include "automata/determinize.h"
#include "schema/schema.h"
#include "util/budget.h"

namespace hedgeq::schema {

/// Boolean algebra and decision procedures over schemas (hedge regular
/// languages are closed under all of these — the property that makes the
/// RELAX/TREX family composable; Section 2).
///
/// Complementation determinizes (worst-case exponential), so every
/// operation built on it takes an ExecBudget and fails with
/// kResourceExhausted — naming the stage and count reached — instead of
/// exhausting the machine. The BudgetScope overloads charge an existing
/// scope, so a chain like SchemasEquivalent (two inclusions, each a
/// complement) shares one cumulative pool.

/// L(a) ∩ L(b).
Schema IntersectSchemas(const Schema& a, const Schema& b);

/// L(a) ∪ L(b).
Schema UnionSchemas(const Schema& a, const Schema& b);

/// Documents over the joint vocabulary of `a` and `universe_hint` that are
/// NOT valid under `a`. The complement is relative to hedges whose element
/// names and variables appear in either schema (hedge languages over an
/// open alphabet have no absolute complement).
Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                const ExecBudget& budget = {});
Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                BudgetScope& scope);

/// L(a) \ L(b) over their joint vocabulary.
Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 const ExecBudget& budget = {});
Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope);

/// L(a) ⊆ L(b)?
Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            const ExecBudget& budget = {});
Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            BudgetScope& scope);

/// L(a) == L(b)?
Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               const ExecBudget& budget = {});
Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               BudgetScope& scope);

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_ALGEBRA_H_
