#ifndef HEDGEQ_SCHEMA_ALGEBRA_H_
#define HEDGEQ_SCHEMA_ALGEBRA_H_

#include "automata/determinize.h"
#include "schema/schema.h"

namespace hedgeq::schema {

/// Boolean algebra and decision procedures over schemas (hedge regular
/// languages are closed under all of these — the property that makes the
/// RELAX/TREX family composable; Section 2).

/// L(a) ∩ L(b).
Schema IntersectSchemas(const Schema& a, const Schema& b);

/// L(a) ∪ L(b).
Schema UnionSchemas(const Schema& a, const Schema& b);

/// Documents over the joint vocabulary of `a` and `universe_hint` that are
/// NOT valid under `a`. The complement is relative to hedges whose element
/// names and variables appear in either schema (hedge languages over an
/// open alphabet have no absolute complement).
Result<Schema> ComplementSchema(
    const Schema& a, const Schema& universe_hint,
    const automata::DeterminizeOptions& options = {});

/// L(a) \ L(b) over their joint vocabulary.
Result<Schema> DifferenceSchemas(
    const Schema& a, const Schema& b,
    const automata::DeterminizeOptions& options = {});

/// L(a) ⊆ L(b)?
Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            const automata::DeterminizeOptions& options = {});

/// L(a) == L(b)?
Result<bool> SchemasEquivalent(
    const Schema& a, const Schema& b,
    const automata::DeterminizeOptions& options = {});

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_ALGEBRA_H_
