#ifndef HEDGEQ_SCHEMA_ALGEBRA_H_
#define HEDGEQ_SCHEMA_ALGEBRA_H_

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "schema/schema.h"
#include "util/budget.h"

namespace hedgeq::schema {

/// Which Boolean operation an AlgebraWitness certifies.
enum class AlgebraOp {
  kIntersect,
  kUnion,
  kDifference,
};

/// Witness of one schema-algebra operation, enough for verify::CheckAlgebra
/// (HQV015) to re-derive the pairing product / disjoint union independently
/// and cross-check sampled memberships against the operand validators.
struct AlgebraWitness {
  AlgebraOp op = AlgebraOp::kIntersect;
  /// Intersect & difference: the raw pairing product (states qa*|Qb|+qb)
  /// *before* the internal PruneNha, plus that prune's trim witness (the
  /// output schema is the trimmed product).
  automata::Nha product;
  automata::TrimWitness trim;
  /// Union: state offsets of the two operand copies inside the output.
  automata::HState offset_a = 0;
  automata::HState offset_b = 0;
  /// Difference only: the complement of `b` (over the joint vocabulary)
  /// that was intersected with `a` — the right operand of `product`.
  automata::Nha complement;
};

/// Boolean algebra and decision procedures over schemas (hedge regular
/// languages are closed under all of these — the property that makes the
/// RELAX/TREX family composable; Section 2).
///
/// Complementation determinizes (worst-case exponential), so every
/// operation built on it takes an ExecBudget and fails with
/// kResourceExhausted — naming the stage and count reached — instead of
/// exhausting the machine. The BudgetScope overloads charge an existing
/// scope, so a chain like SchemasEquivalent (two inclusions, each a
/// complement) shares one cumulative pool.

/// L(a) ∩ L(b).
Schema IntersectSchemas(const Schema& a, const Schema& b);
/// As above, additionally filling `witness` (ignored when null).
Schema IntersectSchemas(const Schema& a, const Schema& b,
                        AlgebraWitness* witness);

/// L(a) ∪ L(b).
Schema UnionSchemas(const Schema& a, const Schema& b);
/// As above, additionally filling `witness` (ignored when null).
Schema UnionSchemas(const Schema& a, const Schema& b,
                    AlgebraWitness* witness);

/// Documents over the joint vocabulary of `a` and `universe_hint` that are
/// NOT valid under `a`. The complement is relative to hedges whose element
/// names and variables appear in either schema (hedge languages over an
/// open alphabet have no absolute complement).
Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                const ExecBudget& budget = {});
Result<Schema> ComplementSchema(const Schema& a, const Schema& universe_hint,
                                BudgetScope& scope);

/// L(a) \ L(b) over their joint vocabulary.
Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 const ExecBudget& budget = {});
Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope);
/// As above, additionally filling `witness` (ignored when null).
Result<Schema> DifferenceSchemas(const Schema& a, const Schema& b,
                                 BudgetScope& scope,
                                 AlgebraWitness* witness);

/// Inline-certification hook (HEDGEQ_CERTIFY): when installed, every
/// Intersect/Union/DifferenceSchemas validates its own witness before
/// returning (the non-Result operations HEDGEQ_CHECK on rejection, like
/// PruneNha's trim hook). Installed by hedgeq_inline_certify; the pointer
/// lives here so schema does not depend on the checker.
using AlgebraValidationHook = Status (*)(const Schema& a, const Schema& b,
                                         const Schema& out,
                                         const AlgebraWitness&);
void SetAlgebraValidationHook(AlgebraValidationHook hook);
AlgebraValidationHook GetAlgebraValidationHook();

/// L(a) ⊆ L(b)?
Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            const ExecBudget& budget = {});
Result<bool> SchemaIncludes(const Schema& a, const Schema& b,
                            BudgetScope& scope);

/// L(a) == L(b)?
Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               const ExecBudget& budget = {});
Result<bool> SchemasEquivalent(const Schema& a, const Schema& b,
                               BudgetScope& scope);

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_ALGEBRA_H_
