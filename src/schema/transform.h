#ifndef HEDGEQ_SCHEMA_TRANSFORM_H_
#define HEDGEQ_SCHEMA_TRANSFORM_H_

#include <vector>

#include "lint/analyze.h"
#include "lint/diagnostics.h"
#include "query/boolean.h"
#include "query/selection.h"
#include "schema/match_identify.h"
#include "schema/schema.h"

namespace hedgeq::schema {

/// The match-identifying product of Section 8: the input schema intersected
/// with M-down-e1 (Theorem 3) and M-up-e2 (Theorem 5). It accepts exactly
/// the schema's language, and in every accepting computation a node carries
/// a marked state iff the selection query locates it.
struct MatchIdentifyingProduct {
  automata::Nha nha;
  std::vector<bool> marked;  // per product state
};

Result<MatchIdentifyingProduct> BuildMatchIdentifyingProduct(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options = {});

/// Pre-flight variant: before (and after) building the product, run static
/// checks and append findings to `diagnostics` (or discard them when null).
/// Emits HQL004 when the schema's language is empty and HQL301 when no
/// marked product state survives trimming, i.e. the query can never select
/// a node of any schema-valid document. With `preflight.fail_on_error` an
/// error-severity finding becomes a kInvalidArgument status.
Result<MatchIdentifyingProduct> BuildMatchIdentifyingProduct(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options, const lint::LintOptions& preflight,
    std::vector<lint::Diagnostic>* diagnostics = nullptr);

/// Output schema of select(e1, e2) on `input`: accepts exactly the subtrees
/// rooted at nodes located in some input-valid document ("we only have to
/// use marked states as final state sequences ... only those marked states
/// from which final state sequences can be reached").
Result<Schema> SelectOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  const ExecBudget& options = {});

/// Output schema of delete: accepts exactly the documents obtained from
/// input-valid documents by removing every located subtree.
Result<Schema> DeleteOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  const ExecBudget& options = {});

/// Output schema of rename: accepts exactly the documents obtained from
/// input-valid documents by relabeling every located node `new_name`
/// (subtrees and positions unchanged).
Result<Schema> RenameOutputSchema(const Schema& input,
                                  const query::SelectionQuery& query,
                                  hedge::SymbolId new_name,
                                  const ExecBudget& options = {});

/// A concrete schema-valid document in which the query locates a node,
/// plus that node's id — synthesized from witnesses of the
/// match-identifying product (subtree witnesses bottom-up, then a chain of
/// contexts up to an accepting top level).
struct SampleMatch {
  hedge::Hedge document;
  hedge::NodeId located;
};

/// nullopt when the query can never match any valid document.
Result<std::optional<SampleMatch>> SampleMatchingDocument(
    const Schema& input, const query::SelectionQuery& query,
    const ExecBudget& options = {});

/// Query containment under a schema (the classic optimization question,
/// Section 9's first open issue): does q1 locate a subset of q2's nodes on
/// every schema-valid document? Decided by layering both queries'
/// match-identifying automata over the schema and checking whether any
/// usable state is q1-marked but not q2-marked; when not contained, a
/// counterexample document (with the distinguishing node) is synthesized.
struct ContainmentResult {
  bool contained;
  std::optional<SampleMatch> counterexample;  // set when !contained
};
Result<ContainmentResult> QueryContainment(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2,
    const ExecBudget& options = {});

/// Certificate of one QueryContainment decision: the pruned layered
/// product the verdict was read off, plus the two per-state mark tables
/// (does q1 / q2 mark the state in some accepting computation). An
/// independent checker (verify::CheckContainment) re-derives the usable
/// states, confirms "contained" means no usable state is q1-marked only,
/// and re-evaluates any counterexample document through the naive
/// Definition 22 oracle.
struct ContainmentWitness {
  automata::Nha product;
  std::vector<bool> marked1;  // per product state: marked by q1
  std::vector<bool> marked2;  // per product state: marked by q2
};

/// Inline certification hook (HEDGEQ_CERTIFY): when installed, every
/// witnessed QueryContainment validates its own verdict before returning.
/// Installed by hedgeq_inline_certify.
using ContainmentValidationHook = Status (*)(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2, const ContainmentResult& result,
    const ContainmentWitness& witness);
void SetContainmentValidationHook(ContainmentValidationHook hook);
ContainmentValidationHook GetContainmentValidationHook();

/// As above, additionally recording the containment certificate into
/// `witness` (ignored when null). Failpoint `containment/flip-verdict`
/// inverts the verdict — and discards the counterexample when flipping to
/// "contained" — a seeded bug verify::CheckContainment must catch.
Result<ContainmentResult> QueryContainment(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2, const ExecBudget& options,
    ContainmentWitness* witness);

/// Both containments hold: the queries locate exactly the same nodes on
/// every schema-valid document.
Result<bool> QueriesEquivalentUnderSchema(
    const Schema& input, const query::SelectionQuery& q1,
    const query::SelectionQuery& q2,
    const ExecBudget& options = {});

/// Boolean-query variants: selection queries are exactly the MSO-definable
/// queries (Section 6) and MSO is boolean-closed; the layered product makes
/// the closure effective at the schema level too — a product state is
/// marked when the formula holds over the leaves' marks.
Result<Schema> SelectOutputSchemaBoolean(
    const Schema& input, const query::BooleanQuery& query,
    const ExecBudget& options = {});

Result<std::optional<SampleMatch>> SampleMatchingDocumentBoolean(
    const Schema& input, const query::BooleanQuery& query,
    const ExecBudget& options = {});

}  // namespace hedgeq::schema

#endif  // HEDGEQ_SCHEMA_TRANSFORM_H_
