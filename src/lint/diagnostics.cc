#include "lint/diagnostics.h"

#include <algorithm>
#include <cstdio>

namespace hedgeq::lint {

namespace {

struct CodeEntry {
  DiagnosticCode code;
  const char* name;
  const char* slug;
};

constexpr CodeEntry kCodes[] = {
    {DiagnosticCode::kEmptyExpression, "HQL001", "empty-expression"},
    {DiagnosticCode::kEmptySubexpression, "HQL002", "empty-subexpression"},
    {DiagnosticCode::kEmptyAutomaton, "HQL003", "empty-automaton"},
    {DiagnosticCode::kEmptySchema, "HQL004", "empty-schema"},
    {DiagnosticCode::kUnreachableStates, "HQL101", "unreachable-states"},
    {DiagnosticCode::kUselessStates, "HQL102", "useless-states"},
    {DiagnosticCode::kDeterminizationBlowupRisk, "HQL201",
     "determinization-blowup-risk"},
    {DiagnosticCode::kAmbiguousExpression, "HQL202", "ambiguous-expression"},
    {DiagnosticCode::kQueryUnsatisfiableUnderSchema, "HQL301",
     "query-unsatisfiable-under-schema"},
    {DiagnosticCode::kQuerySubsumedByQuery, "HQL302",
     "query-subsumed-by-query"},
    {DiagnosticCode::kCertificateMalformed, "HQV001",
     "certificate-malformed"},
    {DiagnosticCode::kSubsetTransitionIncoherent, "HQV002",
     "subset-transition-incoherent"},
    {DiagnosticCode::kFinalSetInconsistent, "HQV003",
     "final-set-inconsistent"},
    {DiagnosticCode::kAssignmentIncoherent, "HQV004",
     "assignment-incoherent"},
    {DiagnosticCode::kTrimWitnessMismatch, "HQV005", "trim-witness-mismatch"},
    {DiagnosticCode::kCompileWitnessRejected, "HQV006",
     "compile-witness-rejected"},
    {DiagnosticCode::kLazyAuditMismatch, "HQV007", "lazy-audit-mismatch"},
    {DiagnosticCode::kProjectionHomomorphismViolated, "HQV008",
     "projection-homomorphism-violated"},
    {DiagnosticCode::kDifferentialDisagreement, "HQV009",
     "differential-disagreement"},
    {DiagnosticCode::kMinimizeWitnessRejected, "HQV010",
     "minimize-witness-rejected"},
    {DiagnosticCode::kPhrProductIncoherent, "HQV011",
     "phr-product-incoherent"},
    {DiagnosticCode::kContainmentCertificateRejected, "HQV012",
     "containment-certificate-rejected"},
    {DiagnosticCode::kSelectionDisagreement, "HQV013",
     "selection-disagreement"},
    {DiagnosticCode::kFromNhaWitnessRejected, "HQV014",
     "from-nha-witness-rejected"},
    {DiagnosticCode::kAlgebraWitnessRejected, "HQV015",
     "algebra-witness-rejected"},
    {DiagnosticCode::kDigestChainMismatch, "HQV016",
     "digest-chain-mismatch"},
};

const CodeEntry& EntryOf(DiagnosticCode code) {
  for (const CodeEntry& e : kCodes) {
    if (e.code == code) return e;
  }
  return kCodes[0];
}

// Minimal JSON string escaping: the five mandatory escapes plus control
// characters as \u00XX.
void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

// Tiny recursive-descent reader for exactly the JSON DiagnosticsToJson
// emits (array of flat string-valued objects). Not a general JSON parser.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<std::vector<Diagnostic>> ReadDiagnostics() {
    SkipSpace();
    if (!Consume('[')) return Error("expected '['");
    std::vector<Diagnostic> out;
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      Result<Diagnostic> d = ReadObject();
      if (!d.ok()) return d.status();
      out.push_back(std::move(d).value());
      SkipSpace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return out;
  }

 private:
  Result<Diagnostic> ReadObject() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    Diagnostic d;
    bool have_severity = false, have_code = false;
    SkipSpace();
    if (!Consume('}')) {
      while (true) {
        Result<std::string> key = ReadString();
        if (!key.ok()) return key.status();
        SkipSpace();
        if (!Consume(':')) return Error("expected ':'");
        Result<std::string> value = ReadString();
        if (!value.ok()) return value.status();
        if (*key == "severity") {
          bool found = false;
          for (Severity s : {Severity::kNote, Severity::kWarning,
                             Severity::kError}) {
            if (*value == SeverityName(s)) {
              d.severity = s;
              found = true;
            }
          }
          if (!found) return Error("unknown severity '" + *value + "'");
          have_severity = true;
        } else if (*key == "code") {
          bool found = false;
          for (const CodeEntry& e : kCodes) {
            if (*value == e.name) {
              d.code = e.code;
              found = true;
            }
          }
          if (!found) return Error("unknown code '" + *value + "'");
          have_code = true;
        } else if (*key == "span") {
          d.span = std::move(*value);
        } else if (*key == "message") {
          d.message = std::move(*value);
        } else if (*key == "hint") {
          d.hint = std::move(*value);
        } else {
          return Error("unknown key '" + *key + "'");
        }
        SkipSpace();
        if (Consume('}')) break;
        if (!Consume(',')) return Error("expected ',' or '}'");
      }
    }
    if (!have_severity || !have_code) {
      return Error("diagnostic object needs 'severity' and 'code'");
    }
    return d;
  }

  Result<std::string> ReadString() {
    SkipSpace();
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          if (value > 0x7f) return Error("non-ASCII \\u escape unsupported");
          out += static_cast<char>(value);
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(std::string what) const {
    return Status::InvalidArgument("lint JSON at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::move(what));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const char* DiagnosticCodeName(DiagnosticCode code) {
  return EntryOf(code).name;
}

const char* DiagnosticCodeSlug(DiagnosticCode code) {
  return EntryOf(code).slug;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "note";
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::string out = SeverityName(diagnostic.severity);
  out += '[';
  out += DiagnosticCodeName(diagnostic.code);
  out += ']';
  if (!diagnostic.span.empty()) {
    out += ' ';
    out += diagnostic.span;
  }
  out += ": ";
  out += diagnostic.message;
  if (!diagnostic.hint.empty()) {
    out += " (hint: ";
    out += diagnostic.hint;
    out += ')';
  }
  return out;
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == Severity::kError;
                     });
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (static_cast<int>(d.severity) > static_cast<int>(max)) {
      max = d.severity;
    }
  }
  return max;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"severity\": ";
    AppendJsonString(out, SeverityName(d.severity));
    out += ", \"code\": ";
    AppendJsonString(out, DiagnosticCodeName(d.code));
    out += ", \"span\": ";
    AppendJsonString(out, d.span);
    out += ", \"message\": ";
    AppendJsonString(out, d.message);
    out += ", \"hint\": ";
    AppendJsonString(out, d.hint);
    out += "}";
  }
  out += diagnostics.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

Result<std::vector<Diagnostic>> ParseDiagnosticsJson(std::string_view json) {
  return JsonReader(json).ReadDiagnostics();
}

}  // namespace hedgeq::lint
