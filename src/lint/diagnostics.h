#ifndef HEDGEQ_LINT_DIAGNOSTICS_H_
#define HEDGEQ_LINT_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::lint {

/// How bad a finding is. Pre-flight hooks and the CLI turn kError findings
/// into failures; warnings and notes are advisory.
enum class Severity {
  kNote,
  kWarning,
  kError,
};

/// Stable diagnostic identifiers. HQL0xx: language-level (emptiness),
/// HQL1xx: automaton hygiene, HQL2xx: cost/ambiguity heuristics,
/// HQL3xx: schema-aware query analysis. HQV0xx: translation-validation
/// failures reported by the certificate checker and the differential
/// oracle (src/verify/). Codes are part of the tool's output contract
/// (CI diffs lint JSON), so never renumber — only append.
enum class DiagnosticCode {
  kEmptyExpression,              // HQL001: the whole HRE denotes {}
  kEmptySubexpression,           // HQL002: a minimal empty subterm poisons
                                 //         every enclosing concatenation
  kEmptyAutomaton,               // HQL003: the automaton accepts nothing
  kEmptySchema,                  // HQL004: no document satisfies the schema
  kUnreachableStates,            // HQL101: states no hedge derives
  kUselessStates,                // HQL102: derivable but non-coaccessible
                                 //         states inflate determinization
  kDeterminizationBlowupRisk,    // HQL201: subset construction predicted to
                                 //         exhaust its budget
  kAmbiguousExpression,          // HQL202: some hedge matches two ways
  kQueryUnsatisfiableUnderSchema,// HQL301: query selects nothing on any
                                 //         schema-valid document
  kQuerySubsumedByQuery,         // HQL302: q1's matches are a subset of q2's
                                 //         on every schema-valid document
  kCertificateMalformed,         // HQV001: certificate shape/range invalid
  kSubsetTransitionIncoherent,   // HQV002: a DHA horizontal transition does
                                 //         not match the recomputed subset step
  kFinalSetInconsistent,         // HQV003: lifted final DFA disagrees with the
                                 //         witnessed final-NFA state sets
  kAssignmentIncoherent,         // HQV004: an assignment/variable subset does
                                 //         not match the accepting rules
  kTrimWitnessMismatch,          // HQV005: trim output is not the projection
                                 //         the reach/co-reach witness implies
  kCompileWitnessRejected,       // HQV006: Lemma 1 trace violates the
                                 //         per-case state/rule accounting
  kLazyAuditMismatch,            // HQV007: a memoized lazy-DHA step disagrees
                                 //         with independent recomputation
  kProjectionHomomorphismViolated,// HQV008: match-identifying product state
                                 //         does not project onto the DHA run
  kDifferentialDisagreement,     // HQV009: two engines disagree on a hedge
  kMinimizeWitnessRejected,      // HQV010: minimization partition is not a
                                 //         language-preserving congruence
  kPhrProductIncoherent,         // HQV011: Theorem 4 class product/mirror
                                 //         disagrees with the recomputed maps
  kContainmentCertificateRejected,// HQV012: containment verdict contradicts
                                 //         its own product witness
  kSelectionDisagreement,        // HQV013: engines disagree on the *node set*
                                 //         a selection query locates
  kFromNhaWitnessRejected,       // HQV014: Lemma 2 state-elimination witness
                                 //         disagrees with its recomputation
  kAlgebraWitnessRejected,       // HQV015: schema algebra product/pairing
                                 //         witness fails re-derivation
  kDigestChainMismatch,          // HQV016: certificate digest chain does not
                                 //         match the recomputed links
};

/// "HQL001" ... — the stable wire name used in text and JSON output.
const char* DiagnosticCodeName(DiagnosticCode code);
/// "empty-expression" ... — the human-oriented slug.
const char* DiagnosticCodeSlug(DiagnosticCode code);
/// "note" / "warning" / "error".
const char* SeverityName(Severity severity);

/// One structured finding. `span` quotes the offending source fragment
/// (an HRE subterm, a state range, a query), `hint` suggests a fix.
struct Diagnostic {
  Severity severity = Severity::kNote;
  DiagnosticCode code = DiagnosticCode::kEmptyExpression;
  std::string span;
  std::string message;
  std::string hint;

  bool operator==(const Diagnostic& other) const = default;
};

/// "error[HQL001] <span>: <message> (hint: <hint>)".
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// True when any finding has severity >= kError.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);
/// The highest severity present (kNote when empty).
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

/// Serializes findings as a JSON array (stable key order, escaped strings),
/// one object per diagnostic. The output round-trips through
/// ParseDiagnosticsJson so CI can diff lint runs structurally.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Inverse of DiagnosticsToJson. Rejects unknown codes/severities and
/// malformed JSON with kInvalidArgument.
Result<std::vector<Diagnostic>> ParseDiagnosticsJson(std::string_view json);

/// Knobs for every analysis pass. The pre-flight hooks in
/// query::SelectionEvaluator / schema transforms are opt-in: they only run
/// when handed a LintOptions, and only reject inputs when `fail_on_error`
/// is set (collected findings always go to the caller's sink).
struct LintOptions {
  /// Pre-flight: turn kError findings into kInvalidArgument statuses.
  bool fail_on_error = true;
  /// Run the (quadratic-state) unambiguity decision procedure on compiled
  /// expressions no larger than `ambiguity_max_states`.
  bool check_ambiguity = true;
  size_t ambiguity_max_states = 48;
  /// Useless-state ratio at or above which HQL102 escalates from note to
  /// warning.
  double useless_warn_ratio = 0.25;
  /// Estimated horizontal subset count at or above 2^blowup_warn_log2
  /// raises HQL201.
  size_t blowup_warn_log2 = 16;
  /// Budget for probe work (per-subexpression emptiness compiles, trim-
  /// comparison determinizations). Deliberately small: lint must stay
  /// cheap even on adversarial input — probes that trip the budget are
  /// skipped, never reported as findings.
  ExecBudget probe_budget = ProbeBudget();

  static ExecBudget ProbeBudget() {
    ExecBudget b;
    b.max_states = size_t{1} << 14;
    b.max_memory_bytes = size_t{64} << 20;
    b.max_steps = size_t{1} << 24;
    b.max_depth = 512;
    return b;
  }
};

}  // namespace hedgeq::lint

#endif  // HEDGEQ_LINT_DIAGNOSTICS_H_
