#include "lint/analyze.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "automata/analysis.h"
#include "automata/determinize.h"
#include "hre/compile.h"

namespace hedgeq::lint {

using automata::HState;
using automata::Nha;
using strre::Nfa;
using strre::StateId;

namespace {

std::string Plural(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string SpanOf(const hre::Hre& e, const hedge::Vocabulary& vocab,
                   size_t max_chars) {
  std::string text = hre::HreToString(e, vocab);
  if (text.size() <= max_chars) return text;
  size_t keep = (max_chars - 3) / 2;
  return text.substr(0, keep) + "..." + text.substr(text.size() - keep);
}

NondetProfile ProfileNha(const Nha& nha) {
  NondetProfile profile;
  profile.nha_states = nha.num_states();
  profile.num_rules = nha.rules().size();
  auto profile_nfa = [&profile](const Nfa& content) {
    profile.content_nfa_states += content.num_states();
    for (StateId s = 0; s < content.num_states(); ++s) {
      const size_t eps = content.EpsilonsFrom(s).size();
      const auto& transitions = content.TransitionsFrom(s);
      bool duplicate_letter = false;
      std::unordered_set<strre::Symbol> seen;
      for (const Nfa::Transition& t : transitions) {
        if (!seen.insert(t.symbol).second) {
          duplicate_letter = true;
          break;
        }
      }
      // A state is a branch point when reading can genuinely fork: two
      // epsilon successors (union/star forks), an epsilon next to a letter
      // move, or two moves on the same letter. Only forks can double the
      // number of simultaneously-live subset members, so their count is
      // the exponent of the expected horizontal blowup.
      if (eps >= 2 || (eps >= 1 && !transitions.empty()) ||
          duplicate_letter) {
        ++profile.nondet_branch_points;
      }
    }
  };
  // The horizontal subset construction reads every content model AND the
  // final state language, so all of them contribute to the blowup.
  for (const Nha::Rule& rule : nha.rules()) profile_nfa(rule.content);
  profile_nfa(nha.final_nfa());
  profile.log2_h_worst = std::min<size_t>(profile.content_nfa_states, 63);
  profile.log2_h_estimate =
      std::min(profile.nondet_branch_points, profile.log2_h_worst);
  return profile;
}

TrimReport AnalyzeTrim(const Nha& nha, const LintOptions& options) {
  TrimReport report;
  report.states_before = nha.num_states();
  Bitset derivable = automata::ReachableStates(nha);
  const size_t num_derivable = derivable.Count();
  report.unreachable = report.states_before - num_derivable;

  std::vector<HState> mapping;
  Nha trimmed = automata::PruneNha(nha, &mapping);
  report.states_after = trimmed.num_states();
  report.useless = num_derivable - report.states_after;

  // Measure the determinization work the dead states cost, if it fits the
  // probe budget on both sides (an incomparable pair would mislead).
  if (report.dead_states() > 0) {
    auto before = automata::Determinize(nha, options.probe_budget);
    auto after = automata::Determinize(trimmed, options.probe_budget);
    if (before.ok() && after.ok()) {
      report.probe_h_states_before = before->dha.num_h_states();
      report.probe_h_states_after = after->dha.num_h_states();
    }
  }
  return report;
}

void LintNha(const Nha& nha, const LintOptions& options,
             const std::string& subject, std::vector<Diagnostic>& out) {
  if (automata::IsEmptyNha(nha)) {
    out.push_back(Diagnostic{
        Severity::kError, DiagnosticCode::kEmptyAutomaton, subject,
        "the automaton accepts no hedge at all (" +
            Plural(nha.num_states(), "state") + ", " +
            Plural(nha.rules().size(), "rule") + ")",
        "every run is doomed before any document is read; check the final "
        "state language and that some rule bottoms out at a leaf"});
    return;  // everything below would restate the same defect per state
  }

  TrimReport trim = AnalyzeTrim(nha, options);
  const double ratio = trim.DeadFraction();
  const Severity dead_severity = ratio >= options.useless_warn_ratio
                                     ? Severity::kWarning
                                     : Severity::kNote;
  if (trim.unreachable > 0) {
    out.push_back(Diagnostic{
        dead_severity, DiagnosticCode::kUnreachableStates, subject,
        Plural(trim.unreachable, "state") + " of " +
            std::to_string(trim.states_before) +
            " cannot be derived by any hedge",
        "run Trim()/PruneNha before determinizing"});
  }
  if (trim.useless > 0) {
    std::string message =
        Plural(trim.useless, "state") + " of " +
        std::to_string(trim.states_before) +
        " are derivable but appear in no accepting computation";
    if (trim.probe_h_states_before > 0) {
      message += "; determinization pays " +
                 std::to_string(trim.probe_h_states_before) +
                 " horizontal states for them where the trimmed automaton "
                 "needs " +
                 std::to_string(trim.probe_h_states_after);
    }
    out.push_back(Diagnostic{dead_severity, DiagnosticCode::kUselessStates,
                             subject, std::move(message),
                             "run Trim()/PruneNha before determinizing"});
  }

  NondetProfile profile = ProfileNha(nha);
  if (profile.log2_h_estimate >= options.blowup_warn_log2) {
    out.push_back(Diagnostic{
        Severity::kWarning, DiagnosticCode::kDeterminizationBlowupRisk,
        subject,
        "estimated subset-construction blowup ~2^" +
            std::to_string(profile.log2_h_estimate) + " horizontal states (" +
            Plural(profile.nondet_branch_points,
                   "nondeterministic branch point") +
            " across " + Plural(profile.content_nfa_states, "content state") +
            "); eager determinization is likely to stop with "
            "resource-exhausted",
        "evaluate with the lazy engine (on-the-fly subsets) or raise the "
        "ExecBudget deliberately"});
  }
}

namespace {

// Structural emptiness, deferring to Lemma 1 compilation (under the shared
// probe scope) only where the AST alone cannot decide. Memoized per node:
// true/false when decided, nullopt when the probe budget tripped.
class EmptinessAnalyzer {
 public:
  EmptinessAnalyzer(const LintOptions& options)
      : scope_(options.probe_budget) {}

  std::optional<bool> Empty(const hre::Hre& e) {
    auto it = memo_.find(e.get());
    if (it != memo_.end()) return it->second;
    std::optional<bool> result = Compute(e);
    memo_.emplace(e.get(), result);
    return result;
  }

 private:
  std::optional<bool> Compute(const hre::Hre& e) {
    switch (e->kind()) {
      case hre::HreKind::kEmptySet:
        return true;
      case hre::HreKind::kEpsilon:
      case hre::HreKind::kVariable:
      case hre::HreKind::kSubstLeaf:
      case hre::HreKind::kStar:  // always contains the empty hedge
        return false;
      case hre::HreKind::kTree:
      case hre::HreKind::kVClose:
        // a<e> and e^z are empty exactly when e is (vclose keeps the
        // depth-one members, so it adds hedges but never removes them).
        return Empty(e->left());
      case hre::HreKind::kConcat: {
        std::optional<bool> l = Empty(e->left());
        std::optional<bool> r = Empty(e->right());
        if (l == true || r == true) return true;
        if (l == false && r == false) return false;
        return std::nullopt;
      }
      case hre::HreKind::kUnion: {
        std::optional<bool> l = Empty(e->left());
        std::optional<bool> r = Empty(e->right());
        if (l == false || r == false) return false;
        if (l == true && r == true) return true;
        return std::nullopt;
      }
      case hre::HreKind::kEmbed: {
        // L(e1 @z e2): members of e2 with each z-leaf replaced by a member
        // of e1 ((b|c) @z a<%z> = {a<b>, a<c>}). Empty e2 is empty
        // outright; both sides nonempty is nonempty. An empty e1 still
        // leaves e2's z-free members — a question the AST alone cannot
        // answer, so decide it by compiling (exact, Lemma 1 + bottom-up
        // reachability).
        std::optional<bool> r = Empty(e->right());
        if (r == true) return true;
        std::optional<bool> l = Empty(e->left());
        if (l == false && r == false) return false;
        return ByCompilation(e);
      }
    }
    return std::nullopt;
  }

  std::optional<bool> ByCompilation(const hre::Hre& e) {
    Result<Nha> nha = hre::CompileHre(e, scope_);
    if (!nha.ok()) return std::nullopt;  // probe budget tripped: undecided
    return automata::IsEmptyNha(*nha);
  }

  BudgetScope scope_;
  std::unordered_map<const hre::HreNode*, std::optional<bool>> memo_;
};

// Collects unique nodes of the expression DAG in post-order.
void PostOrder(const hre::Hre& e,
               std::unordered_set<const hre::HreNode*>& seen,
               std::vector<hre::Hre>& out) {
  if (e == nullptr || !seen.insert(e.get()).second) return;
  if (e->left() != nullptr) PostOrder(e->left(), seen, out);
  if (e->right() != nullptr) PostOrder(e->right(), seen, out);
  out.push_back(e);
}

}  // namespace

bool LintHre(const hre::Hre& e, const hedge::Vocabulary& vocab,
             const LintOptions& options, std::vector<Diagnostic>& out) {
  if (e == nullptr) return false;
  std::vector<hre::Hre> nodes;
  {
    std::unordered_set<const hre::HreNode*> seen;
    PostOrder(e, seen, nodes);
  }

  EmptinessAnalyzer emptiness(options);
  const bool whole_empty = emptiness.Empty(e) == true;

  // A minimal empty subterm has no empty child of its own: it is the root
  // cause (the smallest {}-denoting term), every enclosing concatenation or
  // tree constructor merely inherits the poison.
  for (const hre::Hre& node : nodes) {
    if (emptiness.Empty(node) != true) continue;
    bool child_empty = false;
    for (const hre::Hre* child : {&node->left(), &node->right()}) {
      if (*child != nullptr && emptiness.Empty(*child) == true) {
        child_empty = true;
      }
    }
    if (child_empty) continue;
    if (node == e) continue;  // the root's own emptiness is HQL001 below
    out.push_back(Diagnostic{
        Severity::kWarning, DiagnosticCode::kEmptySubexpression,
        SpanOf(node, vocab),
        "subexpression denotes the empty language: it can never match, "
        "poisons every enclosing concatenation and is a dead branch of any "
        "enclosing union",
        "remove the subterm or fix the condition that makes it "
        "unsatisfiable"});
  }

  if (whole_empty) {
    out.push_back(Diagnostic{
        Severity::kError, DiagnosticCode::kEmptyExpression, SpanOf(e, vocab),
        "the expression denotes the empty language: no hedge can ever "
        "match",
        "look at the empty-subexpression findings for the smallest "
        "unsatisfiable subterm"});
    return true;
  }

  // Cost heuristics need the compiled automaton; skip them when the probe
  // budget cannot even afford compilation (the expression is then itself
  // evidence of blowup, but guessing would be noise).
  BudgetScope scope(options.probe_budget);
  Result<Nha> nha = hre::CompileHre(e, scope);
  if (nha.ok()) {
    NondetProfile profile = ProfileNha(*nha);
    if (profile.log2_h_estimate >= options.blowup_warn_log2) {
      out.push_back(Diagnostic{
          Severity::kWarning, DiagnosticCode::kDeterminizationBlowupRisk,
          SpanOf(e, vocab),
          "estimated subset-construction blowup ~2^" +
              std::to_string(profile.log2_h_estimate) +
              " horizontal states (" +
              Plural(profile.nondet_branch_points,
                     "nondeterministic branch point") +
              " across " +
              Plural(profile.content_nfa_states, "content state") +
              "); eager determinization is likely to stop with "
              "resource-exhausted",
          "evaluate with the lazy engine (on-the-fly subsets) or raise the "
          "ExecBudget deliberately"});
    }
    if (options.check_ambiguity &&
        nha->num_states() <= options.ambiguity_max_states &&
        automata::IsAmbiguous(*nha)) {
      out.push_back(Diagnostic{
          Severity::kNote, DiagnosticCode::kAmbiguousExpression,
          SpanOf(e, vocab),
          "some hedge matches along two distinct computations",
          "Section 9 variable binding needs unambiguous expressions; "
          "rewrite so each hedge has one parse (e.g. disjoint union "
          "branches)"});
    }
  }
  return false;
}

void LintPhrTriplets(const phr::Phr& phr, const hedge::Vocabulary& vocab,
                     const LintOptions& options,
                     std::vector<Diagnostic>& out) {
  const auto& triplets = phr.triplets();
  for (size_t i = 0; i < triplets.size(); ++i) {
    for (const auto& [expr, side] :
         {std::pair<const hre::Hre&, const char*>{triplets[i].elder, "elder"},
          std::pair<const hre::Hre&, const char*>{triplets[i].younger,
                                                  "younger"}}) {
      if (expr == nullptr) continue;
      size_t begin = out.size();
      LintHre(expr, vocab, options, out);
      for (size_t d = begin; d < out.size(); ++d) {
        out[d].span = "triplet " + std::to_string(i + 1) + " " + side +
                      ": " + out[d].span;
      }
    }
  }
}

Status ErrorStatus(const std::vector<Diagnostic>& diagnostics, size_t begin) {
  for (size_t i = begin; i < diagnostics.size(); ++i) {
    if (diagnostics[i].severity == Severity::kError) {
      return Status::InvalidArgument("pre-flight lint rejected the input: " +
                                     FormatDiagnostic(diagnostics[i]));
    }
  }
  return Status::Ok();
}

}  // namespace hedgeq::lint
