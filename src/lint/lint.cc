#include "lint/lint.h"

#include "automata/analysis.h"
#include "schema/algebra.h"
#include "schema/transform.h"

namespace hedgeq::lint {

namespace {

// Prefixes the spans of findings [begin, end) with where in the composite
// construct the offending expression sits ("triplet 2 elder: ...").
void LabelSpans(std::vector<Diagnostic>& diagnostics, size_t begin,
                const std::string& where) {
  for (size_t i = begin; i < diagnostics.size(); ++i) {
    diagnostics[i].span = diagnostics[i].span.empty()
                              ? where
                              : where + ": " + diagnostics[i].span;
  }
}

}  // namespace

LintReport LintExpression(const hre::Hre& e, const hedge::Vocabulary& vocab,
                          const LintOptions& options) {
  LintReport report;
  LintHre(e, vocab, options, report.diagnostics);
  return report;
}

LintReport LintSelectionQuery(const query::SelectionQuery& query,
                              const hedge::Vocabulary& vocab,
                              const LintOptions& options) {
  LintReport report;
  if (query.subhedge != nullptr) {
    size_t begin = report.diagnostics.size();
    LintHre(query.subhedge, vocab, options, report.diagnostics);
    LabelSpans(report.diagnostics, begin, "subhedge condition e1");
  }
  const auto& triplets = query.envelope.triplets();
  for (size_t i = 0; i < triplets.size(); ++i) {
    const std::string where = "triplet " + std::to_string(i + 1);
    if (triplets[i].elder != nullptr) {
      size_t begin = report.diagnostics.size();
      LintHre(triplets[i].elder, vocab, options, report.diagnostics);
      LabelSpans(report.diagnostics, begin, where + " elder");
    }
    if (triplets[i].younger != nullptr) {
      size_t begin = report.diagnostics.size();
      LintHre(triplets[i].younger, vocab, options, report.diagnostics);
      LabelSpans(report.diagnostics, begin, where + " younger");
    }
  }
  return report;
}

LintReport LintSchema(const schema::Schema& schema,
                      const hedge::Vocabulary& vocab,
                      const LintOptions& options) {
  (void)vocab;  // symmetry with the expression passes; spans are state-based
  LintReport report;
  if (schema.IsEmpty()) {
    report.diagnostics.push_back(Diagnostic{
        Severity::kError, DiagnosticCode::kEmptySchema, "schema",
        "no document satisfies this schema",
        "some rule chain never bottoms out (or the start language is "
        "unsatisfiable); every validation will reject"});
    return report;
  }
  LintNha(schema.nha(), options, "schema", report.diagnostics);
  return report;
}

Result<LintReport> LintQueryUnderSchema(const schema::Schema& schema,
                                        const query::SelectionQuery& query,
                                        const hedge::Vocabulary& vocab,
                                        const LintOptions& options) {
  LintReport report = LintSelectionQuery(query, vocab, options);
  {
    LintReport schema_report = LintSchema(schema, vocab, options);
    report.diagnostics.insert(report.diagnostics.end(),
                              schema_report.diagnostics.begin(),
                              schema_report.diagnostics.end());
  }
  if (report.has_errors()) return report;  // the product would only restate

  LintOptions product_options = options;
  product_options.fail_on_error = false;
  Result<schema::MatchIdentifyingProduct> product =
      schema::BuildMatchIdentifyingProduct(schema, query,
                                           options.probe_budget,
                                           product_options,
                                           &report.diagnostics);
  if (!product.ok() &&
      product.status().code() != StatusCode::kResourceExhausted) {
    return product.status();
  }
  return report;
}

Result<LintReport> LintQueryOverlap(const schema::Schema& schema,
                                    const query::SelectionQuery& q1,
                                    const query::SelectionQuery& q2,
                                    const hedge::Vocabulary& vocab,
                                    const LintOptions& options) {
  (void)vocab;
  LintReport report;
  auto check = [&](const query::SelectionQuery& a,
                   const query::SelectionQuery& b, const char* a_name,
                   const char* b_name) -> Status {
    Result<schema::ContainmentResult> contained =
        schema::QueryContainment(schema, a, b, options.probe_budget);
    if (!contained.ok()) {
      // An undecidable probe (budget) leaves the question open silently.
      return contained.status().code() == StatusCode::kResourceExhausted
                 ? Status::Ok()
                 : contained.status();
    }
    if (contained->contained) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, DiagnosticCode::kQuerySubsumedByQuery,
          std::string(a_name) + " vs " + b_name,
          std::string("every node located by ") + a_name +
              " is located by " + b_name +
              " on every schema-valid document",
          std::string("drop ") + a_name +
              " or tighten it; running both does redundant work"});
    }
    return Status::Ok();
  };
  HEDGEQ_RETURN_IF_ERROR(check(q1, q2, "q1", "q2"));
  HEDGEQ_RETURN_IF_ERROR(check(q2, q1, "q2", "q1"));
  return report;
}

Result<LintReport> LintSchemaOverlap(const schema::Schema& a,
                                     const schema::Schema& b,
                                     const hedge::Vocabulary& vocab,
                                     const LintOptions& options) {
  (void)vocab;
  LintReport report;
  // Disjointness probe: witness-recording, so the intersection (and its
  // internal prune) is validated by verify::CheckAlgebra under
  // HEDGEQ_CERTIFY before the emptiness verdict below is trusted.
  {
    schema::AlgebraWitness witness;
    schema::Schema inter = schema::IntersectSchemas(a, b, &witness);
    if (inter.IsEmpty()) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, DiagnosticCode::kQueryUnsatisfiableUnderSchema,
          "schema a vs schema b",
          "no document satisfies both schemas (their certified intersection "
          "is empty)",
          "anything validated against one schema can never validate against "
          "the other; a query or pipeline bridging them selects nothing"});
    }
  }
  // Inclusion probes, one per direction: L(x) ⊆ L(y) iff the certified
  // difference x \ y is empty. The complement inside each difference
  // determinizes, so it runs under the probe budget.
  auto included = [&](const schema::Schema& x, const schema::Schema& y,
                      const char* x_name, const char* y_name) -> Status {
    BudgetScope scope(options.probe_budget);
    schema::AlgebraWitness witness;
    Result<schema::Schema> diff =
        schema::DifferenceSchemas(x, y, scope, &witness);
    if (!diff.ok()) {
      // An undecidable probe (budget) leaves the question open silently.
      return diff.status().code() == StatusCode::kResourceExhausted
                 ? Status::Ok()
                 : diff.status();
    }
    if (diff->IsEmpty()) {
      report.diagnostics.push_back(Diagnostic{
          Severity::kWarning, DiagnosticCode::kQuerySubsumedByQuery,
          std::string(x_name) + " vs " + y_name,
          std::string("every document valid under schema ") + x_name +
              " is valid under schema " + y_name +
              " (their certified difference is empty)",
          std::string("schema ") + x_name + " is redundant next to " +
              y_name + "; validating against both does redundant work"});
    }
    return Status::Ok();
  };
  HEDGEQ_RETURN_IF_ERROR(included(a, b, "a", "b"));
  HEDGEQ_RETURN_IF_ERROR(included(b, a, "b", "a"));
  return report;
}

}  // namespace hedgeq::lint
