#ifndef HEDGEQ_LINT_ANALYZE_H_
#define HEDGEQ_LINT_ANALYZE_H_

#include <string>
#include <vector>

#include "automata/nha.h"
#include "hre/ast.h"
#include "lint/diagnostics.h"
#include "phr/phr.h"

namespace hedgeq::lint {

/// Static nondeterminism profile of an NHA: the raw material of the
/// budget-risk heuristic. The horizontal subset construction of Theorem 1
/// works over the union of all rule content NFAs, so its worst case is
/// 2^(content states); the *expected* blowup tracks the number of genuine
/// nondeterministic choice points (union/star epsilon forks and duplicate
/// same-letter transitions), because only those can double the live subset
/// count. Experiment E12 cross-checks the estimate against measured
/// determinizations (bench_determinize prints both columns).
struct NondetProfile {
  size_t nha_states = 0;
  size_t num_rules = 0;
  size_t content_nfa_states = 0;   // total across all rule contents
  size_t nondet_branch_points = 0; // content states with a real choice
  size_t log2_h_worst = 0;         // min(content_nfa_states, 63)
  size_t log2_h_estimate = 0;      // min(nondet_branch_points, log2_h_worst)
};

NondetProfile ProfileNha(const automata::Nha& nha);

/// What a Trim() pass (PruneNha) would save: dead-state counts plus — when
/// the probe budget allows — the measured horizontal-state cost of
/// determinizing with and without the dead states, i.e. the subset-
/// construction work the user is paying for states no computation uses.
struct TrimReport {
  size_t states_before = 0;
  size_t states_after = 0;
  size_t unreachable = 0;  // not derivable by any hedge (bottom-up)
  size_t useless = 0;      // derivable but not co-accessible
  /// Probe determinization h-state counts; 0 when the probe tripped its
  /// budget (the automaton is then itself blowup-suspect).
  size_t probe_h_states_before = 0;
  size_t probe_h_states_after = 0;

  size_t dead_states() const { return unreachable + useless; }
  double DeadFraction() const {
    return states_before == 0
               ? 0.0
               : static_cast<double>(dead_states()) /
                     static_cast<double>(states_before);
  }
};

TrimReport AnalyzeTrim(const automata::Nha& nha, const LintOptions& options);

/// Appends automaton-hygiene findings for `nha` to `out`:
///   HQL003 (error)       — the automaton accepts no hedge at all
///   HQL101 (note/warn)   — unreachable states
///   HQL102 (note/warn)   — useless (non-coaccessible) states, with the
///                          trim savings measured by AnalyzeTrim
///   HQL201 (warning)     — estimated subset-construction blowup
/// `subject` names the automaton inside spans ("schema", "subhedge
/// automaton", ...).
void LintNha(const automata::Nha& nha, const LintOptions& options,
             const std::string& subject, std::vector<Diagnostic>& out);

/// Appends expression-level findings for `e` to `out`:
///   HQL001 (error)   — the whole expression denotes the empty language
///   HQL002 (warning) — a minimal empty subexpression (its own subterms are
///                      all nonempty): under concatenation or a<...> it
///                      poisons the whole term, under union it is a dead
///                      branch
///   HQL201 (warning) — estimated determinization blowup of the compiled
///                      automaton
///   HQL202 (note)    — the expression is ambiguous (some hedge matches
///                      along two distinct computations)
/// Emptiness of each subexpression is decided exactly, by compiling the
/// subterm (Lemma 1) and running the bottom-up reachability fixpoint, all
/// under options.probe_budget; subterms whose probe trips the budget are
/// skipped. Returns true when the whole expression is provably empty.
bool LintHre(const hre::Hre& e, const hedge::Vocabulary& vocab,
             const LintOptions& options, std::vector<Diagnostic>& out);

/// Renders a subexpression for diagnostic spans, eliding the middle of
/// long expressions.
std::string SpanOf(const hre::Hre& e, const hedge::Vocabulary& vocab,
                   size_t max_chars = 60);

/// Lints every triplet condition of a pointed hedge representation,
/// prefixing spans with "triplet <i> elder/younger". Shared by the
/// pre-flight hooks of PhrEvaluator and SelectionEvaluator.
void LintPhrTriplets(const phr::Phr& phr, const hedge::Vocabulary& vocab,
                     const LintOptions& options,
                     std::vector<Diagnostic>& out);

/// Pre-flight gating: the first kError finding at or after index `begin`
/// as a kInvalidArgument status, or Ok when none.
Status ErrorStatus(const std::vector<Diagnostic>& diagnostics, size_t begin);

}  // namespace hedgeq::lint

#endif  // HEDGEQ_LINT_ANALYZE_H_
