#ifndef HEDGEQ_LINT_LINT_H_
#define HEDGEQ_LINT_LINT_H_

#include <string>
#include <vector>

#include "lint/analyze.h"
#include "lint/diagnostics.h"
#include "query/selection.h"
#include "schema/schema.h"

namespace hedgeq::lint {

/// The result of one lint run: structured findings, ready for text output
/// (FormatDiagnostic), JSON output (DiagnosticsToJson) or CI gating
/// (HasErrors drives the CLI exit code).
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const { return HasErrors(diagnostics); }
  Severity max_severity() const { return MaxSeverity(diagnostics); }
};

/// Lints a bare hedge regular expression (HQL001/002/201/202).
LintReport LintExpression(const hre::Hre& e, const hedge::Vocabulary& vocab,
                          const LintOptions& options = {});

/// Lints every expression of a selection query select(e1; e2): the
/// subhedge condition e1 and each triplet's elder/younger condition.
/// An empty-language e1 or a triplet whose conditions cannot both hold
/// makes the whole query unsatisfiable on every document.
LintReport LintSelectionQuery(const query::SelectionQuery& query,
                              const hedge::Vocabulary& vocab,
                              const LintOptions& options = {});

/// Lints a schema: HQL004 when its language is empty, otherwise automaton
/// hygiene (HQL101/102/201) for the grammar's automaton.
LintReport LintSchema(const schema::Schema& schema,
                      const hedge::Vocabulary& vocab,
                      const LintOptions& options = {});

/// The schema-aware pass: lints the query and the schema individually,
/// then decides (by match-identifying-product emptiness, Section 8
/// machinery) whether the query can select anything at all under the
/// schema — HQL301 when it cannot. Product construction runs under
/// options.probe_budget; when the probe trips, the question is left open
/// (no finding). Errors other than resource exhaustion propagate.
Result<LintReport> LintQueryUnderSchema(const schema::Schema& schema,
                                        const query::SelectionQuery& query,
                                        const hedge::Vocabulary& vocab,
                                        const LintOptions& options = {});

/// Containment between two queries under a schema: HQL302 when q1's
/// matches are a subset of q2's on every schema-valid document (and vice
/// versa; both directions reported, so equivalent queries yield two
/// findings). The classic redundant-predicate warning of query optimizers.
Result<LintReport> LintQueryOverlap(const schema::Schema& schema,
                                    const query::SelectionQuery& q1,
                                    const query::SelectionQuery& q2,
                                    const hedge::Vocabulary& vocab,
                                    const LintOptions& options = {});

/// Schema-pair probes through the certified Boolean algebra: HQL301 when
/// no document satisfies both schemas (their intersection is empty — a
/// query valid under one can never match under the other), HQL302 when one
/// schema's language is included in the other's (the difference is empty;
/// both directions probed, so equivalent schemas yield two findings). The
/// intersection and differences run witness-recording, so under
/// HEDGEQ_CERTIFY every verdict here is validated by verify::CheckAlgebra
/// (HQV015) before this function returns. Each difference complements
/// under options.probe_budget; a tripped budget leaves that direction open
/// (no finding). Errors other than resource exhaustion propagate.
Result<LintReport> LintSchemaOverlap(const schema::Schema& a,
                                     const schema::Schema& b,
                                     const hedge::Vocabulary& vocab,
                                     const LintOptions& options = {});

}  // namespace hedgeq::lint

#endif  // HEDGEQ_LINT_LINT_H_
