#include "strre/automaton.h"

#include <algorithm>

#include "util/check.h"

namespace hedgeq::strre {

StateId Nfa::AddState(bool accepting) {
  StateId id = static_cast<StateId>(accepting_.size());
  transitions_.emplace_back();
  epsilons_.emplace_back();
  accepting_.push_back(accepting);
  if (start_ == kNoState) start_ = id;
  return id;
}

void Nfa::AddTransition(StateId from, Symbol symbol, StateId to) {
  HEDGEQ_CHECK(from < num_states() && to < num_states());
  transitions_[from].push_back({symbol, to});
}

void Nfa::AddEpsilon(StateId from, StateId to) {
  HEDGEQ_CHECK(from < num_states() && to < num_states());
  epsilons_[from].push_back(to);
}

void Nfa::SetAccepting(StateId s, bool accepting) {
  HEDGEQ_CHECK(s < num_states());
  accepting_[s] = accepting;
}

void Nfa::EpsilonClosure(Bitset& states) const {
  std::vector<StateId> stack = states.ToVector();
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (StateId t : epsilons_[s]) {
      if (!states.Test(t)) {
        states.Set(t);
        stack.push_back(t);
      }
    }
  }
}

bool Nfa::Accepts(std::span<const Symbol> word) const {
  if (num_states() == 0 || start_ == kNoState) return false;
  Bitset current(num_states());
  current.Set(start_);
  EpsilonClosure(current);
  for (Symbol a : word) {
    Bitset next(num_states());
    for (uint32_t s : current.ToVector()) {
      for (const Transition& t : transitions_[s]) {
        if (t.symbol == a) next.Set(t.to);
      }
    }
    EpsilonClosure(next);
    current = std::move(next);
    if (current.None()) return false;
  }
  for (uint32_t s : current.ToVector()) {
    if (accepting_[s]) return true;
  }
  return false;
}

std::vector<Symbol> Nfa::AlphabetInUse() const {
  std::vector<Symbol> out;
  for (const auto& ts : transitions_) {
    for (const Transition& t : ts) out.push_back(t.symbol);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StateId Dfa::AddState(bool accepting) {
  StateId id = static_cast<StateId>(accepting_.size());
  transitions_.emplace_back();
  accepting_.push_back(accepting);
  if (start_ == kNoState) start_ = id;
  return id;
}

void Dfa::SetTransition(StateId from, Symbol symbol, StateId to) {
  HEDGEQ_CHECK(from < num_states() && to < num_states());
  transitions_[from][symbol] = to;
}

StateId Dfa::Next(StateId s, Symbol symbol) const {
  if (s == kNoState) return kNoState;
  const auto& map = transitions_[s];
  auto it = map.find(symbol);
  return it == map.end() ? kNoState : it->second;
}

StateId Dfa::Run(std::span<const Symbol> word) const {
  StateId s = start_;
  for (Symbol a : word) {
    s = Next(s, a);
    if (s == kNoState) return kNoState;
  }
  return s;
}

std::vector<Symbol> Dfa::AlphabetInUse() const {
  std::vector<Symbol> out;
  for (const auto& ts : transitions_) {
    for (const auto& [symbol, to] : ts) out.push_back(symbol);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hedgeq::strre
