#include "strre/ops.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "util/check.h"

namespace hedgeq::strre {

namespace {

// Fragment of a Thompson NFA under construction: entry and exit states.
struct Fragment {
  StateId in;
  StateId out;
};

Fragment BuildThompson(const Regex& e, Nfa& nfa) {
  StateId in = nfa.AddState();
  StateId out = nfa.AddState();
  switch (e->kind()) {
    case RegexKind::kEmptySet:
      break;  // no path from in to out
    case RegexKind::kEpsilon:
      nfa.AddEpsilon(in, out);
      break;
    case RegexKind::kSymbol:
      nfa.AddTransition(in, e->symbol(), out);
      break;
    case RegexKind::kConcat: {
      Fragment a = BuildThompson(e->left(), nfa);
      Fragment b = BuildThompson(e->right(), nfa);
      nfa.AddEpsilon(in, a.in);
      nfa.AddEpsilon(a.out, b.in);
      nfa.AddEpsilon(b.out, out);
      break;
    }
    case RegexKind::kUnion: {
      Fragment a = BuildThompson(e->left(), nfa);
      Fragment b = BuildThompson(e->right(), nfa);
      nfa.AddEpsilon(in, a.in);
      nfa.AddEpsilon(in, b.in);
      nfa.AddEpsilon(a.out, out);
      nfa.AddEpsilon(b.out, out);
      break;
    }
    case RegexKind::kStar: {
      Fragment a = BuildThompson(e->left(), nfa);
      nfa.AddEpsilon(in, a.in);
      nfa.AddEpsilon(in, out);
      nfa.AddEpsilon(a.out, a.in);
      nfa.AddEpsilon(a.out, out);
      break;
    }
    case RegexKind::kPlus: {
      Fragment a = BuildThompson(e->left(), nfa);
      nfa.AddEpsilon(in, a.in);
      nfa.AddEpsilon(a.out, a.in);
      nfa.AddEpsilon(a.out, out);
      break;
    }
    case RegexKind::kOptional: {
      Fragment a = BuildThompson(e->left(), nfa);
      nfa.AddEpsilon(in, a.in);
      nfa.AddEpsilon(in, out);
      nfa.AddEpsilon(a.out, out);
      break;
    }
  }
  return {in, out};
}

// Copies `src` into `dst`, returning the state-id offset.
StateId CopyInto(const Nfa& src, Nfa& dst) {
  StateId offset = static_cast<StateId>(dst.num_states());
  for (StateId s = 0; s < src.num_states(); ++s) {
    dst.AddState(src.IsAccepting(s));
  }
  for (StateId s = 0; s < src.num_states(); ++s) {
    for (const Nfa::Transition& t : src.TransitionsFrom(s)) {
      dst.AddTransition(offset + s, t.symbol, offset + t.to);
    }
    for (StateId t : src.EpsilonsFrom(s)) {
      dst.AddEpsilon(offset + s, offset + t);
    }
  }
  return offset;
}

}  // namespace

Nfa CompileRegex(const Regex& e) {
  Nfa nfa;
  Fragment f = BuildThompson(e, nfa);
  nfa.SetStart(f.in);
  nfa.SetAccepting(f.out, true);
  return nfa;
}

Dfa Determinize(const Nfa& nfa) {
  BudgetScope scope(ExecBudget::Unlimited());
  Result<Dfa> out = DeterminizeBounded(nfa, scope);
  HEDGEQ_CHECK_MSG(out.ok(), "unbounded Determinize cannot fail");
  return std::move(out).value();
}

Result<Dfa> DeterminizeBounded(const Nfa& nfa, BudgetScope& scope) {
  Dfa dfa;
  if (nfa.num_states() == 0 || nfa.start() == kNoState) {
    dfa.AddState(false);
    return dfa;
  }
  std::unordered_map<Bitset, StateId, BitsetHash> ids;
  std::deque<Bitset> worklist;

  Status charge_status;
  auto intern = [&](Bitset subset) -> StateId {
    auto it = ids.find(subset);
    if (it != ids.end()) return it->second;
    bool accepting = false;
    for (uint32_t s : subset.ToVector()) {
      if (nfa.IsAccepting(s)) {
        accepting = true;
        break;
      }
    }
    if (charge_status.ok()) {
      Status st = scope.ChargeStates(1, "strre/determinize");
      if (st.ok()) {
        st = scope.ChargeBytes(2 * subset.ApproxBytes() + 32,
                               "strre/determinize");
      }
      if (!st.ok()) charge_status = std::move(st);
    }
    StateId id = dfa.AddState(accepting);
    ids.emplace(subset, id);
    worklist.push_back(std::move(subset));
    return id;
  };

  Bitset start(nfa.num_states());
  start.Set(nfa.start());
  nfa.EpsilonClosure(start);
  intern(std::move(start));

  while (!worklist.empty()) {
    if (!charge_status.ok()) return charge_status;
    Bitset subset = std::move(worklist.front());
    worklist.pop_front();
    StateId from = ids.at(subset);
    // Group successors by symbol.
    std::map<Symbol, Bitset> moves;
    size_t steps = 1;
    for (uint32_t s : subset.ToVector()) {
      for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
        ++steps;
        auto [it, inserted] = moves.try_emplace(t.symbol, nfa.num_states());
        it->second.Set(t.to);
      }
    }
    HEDGEQ_RETURN_IF_ERROR(scope.ChargeSteps(steps, "strre/determinize"));
    for (auto& [symbol, target] : moves) {
      nfa.EpsilonClosure(target);
      StateId to = intern(std::move(target));
      dfa.SetTransition(from, symbol, to);
    }
  }
  if (!charge_status.ok()) return charge_status;
  return dfa;
}

Dfa Complete(const Dfa& dfa, std::span<const Symbol> alphabet) {
  Dfa out;
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    out.AddState(dfa.IsAccepting(s));
  }
  if (dfa.num_states() == 0) {
    out.AddState(false);  // lone sink doubles as start
    for (Symbol a : alphabet) out.SetTransition(0, a, 0);
    return out;
  }
  out.SetStart(dfa.start());
  StateId sink = kNoState;
  auto get_sink = [&]() {
    if (sink == kNoState) {
      sink = out.AddState(false);
      for (Symbol a : alphabet) out.SetTransition(sink, a, sink);
    }
    return sink;
  };
  for (StateId s = 0; s < dfa.num_states(); ++s) {
    for (const auto& [symbol, to] : dfa.TransitionsFrom(s)) {
      out.SetTransition(s, symbol, to);
    }
    for (Symbol a : alphabet) {
      if (dfa.Next(s, a) == kNoState) out.SetTransition(s, a, get_sink());
    }
  }
  return out;
}

Dfa Complement(const Dfa& dfa, std::span<const Symbol> alphabet) {
  Dfa total = Complete(dfa, alphabet);
  Dfa out;
  for (StateId s = 0; s < total.num_states(); ++s) {
    out.AddState(!total.IsAccepting(s));
  }
  out.SetStart(total.start());
  for (StateId s = 0; s < total.num_states(); ++s) {
    for (const auto& [symbol, to] : total.TransitionsFrom(s)) {
      out.SetTransition(s, symbol, to);
    }
  }
  return out;
}

Dfa Minimize(const Dfa& dfa, std::span<const Symbol> alphabet) {
  Dfa total = Complete(dfa, alphabet);

  // Drop unreachable states first.
  std::vector<bool> reachable(total.num_states(), false);
  std::deque<StateId> queue;
  reachable[total.start()] = true;
  queue.push_back(total.start());
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (const auto& [symbol, to] : total.TransitionsFrom(s)) {
      if (!reachable[to]) {
        reachable[to] = true;
        queue.push_back(to);
      }
    }
  }

  // Moore refinement: class id per state, refined by transition signatures.
  std::vector<int> cls(total.num_states(), -1);
  for (StateId s = 0; s < total.num_states(); ++s) {
    if (reachable[s]) cls[s] = total.IsAccepting(s) ? 1 : 0;
  }
  size_t num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> next_cls(total.num_states(), -1);
    for (StateId s = 0; s < total.num_states(); ++s) {
      if (!reachable[s]) continue;
      std::vector<int> sig;
      sig.reserve(alphabet.size() + 1);
      sig.push_back(cls[s]);
      for (Symbol a : alphabet) {
        StateId t = total.Next(s, a);
        sig.push_back(t == kNoState ? -1 : cls[t]);
      }
      auto [it, inserted] =
          signature_ids.try_emplace(std::move(sig),
                                    static_cast<int>(signature_ids.size()));
      next_cls[s] = it->second;
    }
    if (signature_ids.size() == num_classes) break;
    num_classes = signature_ids.size();
    cls = std::move(next_cls);
  }

  // Detect the sink class (non-accepting, all transitions self) so it can
  // stay implicit in the output.
  std::vector<int> representative(num_classes, -1);
  for (StateId s = 0; s < total.num_states(); ++s) {
    if (reachable[s] && representative[static_cast<size_t>(cls[s])] == -1) {
      representative[static_cast<size_t>(cls[s])] = static_cast<int>(s);
    }
  }
  int sink_class = -1;
  for (size_t c = 0; c < num_classes; ++c) {
    StateId rep = static_cast<StateId>(representative[c]);
    if (total.IsAccepting(rep)) continue;
    bool all_self = true;
    for (Symbol a : alphabet) {
      StateId t = total.Next(rep, a);
      if (t == kNoState || cls[t] != static_cast<int>(c)) {
        all_self = false;
        break;
      }
    }
    if (all_self && static_cast<int>(c) != cls[total.start()]) {
      sink_class = static_cast<int>(c);
      break;
    }
  }

  // Build the quotient automaton.
  Dfa out;
  std::vector<StateId> class_state(num_classes, kNoState);
  for (size_t c = 0; c < num_classes; ++c) {
    if (static_cast<int>(c) == sink_class) continue;
    StateId rep = static_cast<StateId>(representative[c]);
    class_state[c] = out.AddState(total.IsAccepting(rep));
  }
  out.SetStart(class_state[static_cast<size_t>(cls[total.start()])]);
  for (size_t c = 0; c < num_classes; ++c) {
    if (static_cast<int>(c) == sink_class) continue;
    StateId rep = static_cast<StateId>(representative[c]);
    for (Symbol a : alphabet) {
      StateId t = total.Next(rep, a);
      HEDGEQ_CHECK(t != kNoState);
      int tc = cls[t];
      if (tc == sink_class) continue;  // implicit dead
      out.SetTransition(class_state[c], a, class_state[static_cast<size_t>(tc)]);
    }
  }
  return out;
}

Dfa Product(const Dfa& a, const Dfa& b, BoolOp op) {
  Dfa out;
  // Pair states; kNoState components model the implicit sink of either side.
  struct PairHash {
    size_t operator()(const std::pair<StateId, StateId>& p) const {
      return std::hash<uint64_t>()((uint64_t{p.first} << 32) | p.second);
    }
  };
  std::unordered_map<std::pair<StateId, StateId>, StateId, PairHash> ids;
  std::deque<std::pair<StateId, StateId>> worklist;

  auto is_accepting = [&](StateId sa, StateId sb) {
    bool aa = sa != kNoState && a.IsAccepting(sa);
    bool ba = sb != kNoState && b.IsAccepting(sb);
    switch (op) {
      case BoolOp::kAnd:
        return aa && ba;
      case BoolOp::kOr:
        return aa || ba;
      case BoolOp::kDiff:
        return aa && !ba;
    }
    return false;
  };

  auto intern = [&](StateId sa, StateId sb) -> StateId {
    auto key = std::make_pair(sa, sb);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    StateId id = out.AddState(is_accepting(sa, sb));
    ids.emplace(key, id);
    worklist.push_back(key);
    return id;
  };

  StateId sa0 = a.num_states() == 0 ? kNoState : a.start();
  StateId sb0 = b.num_states() == 0 ? kNoState : b.start();
  if (sa0 == kNoState && sb0 == kNoState) {
    out.AddState(false);
    return out;
  }
  intern(sa0, sb0);

  while (!worklist.empty()) {
    auto [sa, sb] = worklist.front();
    worklist.pop_front();
    StateId from = ids.at({sa, sb});
    // Explore every symbol with a live successor on either side.
    std::vector<Symbol> symbols;
    if (sa != kNoState) {
      for (const auto& [symbol, to] : a.TransitionsFrom(sa)) {
        symbols.push_back(symbol);
      }
    }
    if (sb != kNoState) {
      for (const auto& [symbol, to] : b.TransitionsFrom(sb)) {
        symbols.push_back(symbol);
      }
    }
    std::sort(symbols.begin(), symbols.end());
    symbols.erase(std::unique(symbols.begin(), symbols.end()), symbols.end());
    for (Symbol symbol : symbols) {
      StateId ta = a.Next(sa, symbol);
      StateId tb = b.Next(sb, symbol);
      if (ta == kNoState && tb == kNoState) continue;  // implicit dead pair
      // For intersection, a dead component kills the pair: skip exploring.
      if (op == BoolOp::kAnd && (ta == kNoState || tb == kNoState)) continue;
      out.SetTransition(from, symbol, intern(ta, tb));
    }
  }
  return out;
}

Nfa IntersectNfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  const size_t nb = b.num_states();
  for (size_t i = 0; i < a.num_states() * nb; ++i) out.AddState(false);
  if (a.num_states() == 0 || b.num_states() == 0 ||
      a.start() == kNoState || b.start() == kNoState) {
    return out;
  }
  auto pid = [nb](StateId sa, StateId sb) {
    return static_cast<StateId>(sa * nb + sb);
  };
  out.SetStart(pid(a.start(), b.start()));
  for (StateId sa = 0; sa < a.num_states(); ++sa) {
    for (StateId sb = 0; sb < b.num_states(); ++sb) {
      if (a.IsAccepting(sa) && b.IsAccepting(sb)) {
        out.SetAccepting(pid(sa, sb), true);
      }
      for (StateId ta : a.EpsilonsFrom(sa)) {
        out.AddEpsilon(pid(sa, sb), pid(ta, sb));
      }
      for (StateId tb : b.EpsilonsFrom(sb)) {
        out.AddEpsilon(pid(sa, sb), pid(sa, tb));
      }
      for (const Nfa::Transition& ta : a.TransitionsFrom(sa)) {
        for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
          if (ta.symbol == tb.symbol) {
            out.AddTransition(pid(sa, sb), ta.symbol, pid(ta.to, tb.to));
          }
        }
      }
    }
  }
  return out;
}

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  StateId start = out.AddState();
  StateId oa = CopyInto(a, out);
  StateId ob = CopyInto(b, out);
  out.SetStart(start);
  if (a.start() != kNoState) out.AddEpsilon(start, oa + a.start());
  if (b.start() != kNoState) out.AddEpsilon(start, ob + b.start());
  return out;
}

Nfa ConcatNfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  StateId oa = CopyInto(a, out);
  StateId ob = CopyInto(b, out);
  if (a.start() != kNoState) out.SetStart(oa + a.start());
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s)) {
      out.SetAccepting(oa + s, false);
      if (b.start() != kNoState) out.AddEpsilon(oa + s, ob + b.start());
    }
  }
  for (StateId s = 0; s < b.num_states(); ++s) {
    out.SetAccepting(ob + s, b.IsAccepting(s));
  }
  return out;
}

Nfa StarNfa(const Nfa& a) {
  Nfa out;
  StateId start = out.AddState(true);
  StateId oa = CopyInto(a, out);
  out.SetStart(start);
  if (a.start() != kNoState) out.AddEpsilon(start, oa + a.start());
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s)) out.AddEpsilon(oa + s, start);
  }
  return out;
}

Nfa NfaFromDfa(const Dfa& d) {
  Nfa out;
  for (StateId s = 0; s < d.num_states(); ++s) out.AddState(d.IsAccepting(s));
  if (d.num_states() > 0) out.SetStart(d.start());
  for (StateId s = 0; s < d.num_states(); ++s) {
    for (const auto& [symbol, to] : d.TransitionsFrom(s)) {
      out.AddTransition(s, symbol, to);
    }
  }
  return out;
}

Nfa ReverseNfa(const Nfa& a) {
  Nfa out;
  for (StateId s = 0; s < a.num_states(); ++s) out.AddState(false);
  // Fresh start with epsilons into every accepting state of `a`.
  StateId start = out.AddState(false);
  out.SetStart(start);
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s)) out.AddEpsilon(start, s);
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      out.AddTransition(t.to, t.symbol, s);
    }
    for (StateId t : a.EpsilonsFrom(s)) {
      out.AddEpsilon(t, s);
    }
  }
  if (a.start() != kNoState) out.SetAccepting(a.start(), true);
  return out;
}

Nfa SubstituteSets(const Nfa& a,
                   const std::function<std::vector<Symbol>(Symbol)>& image) {
  Nfa out;
  for (StateId s = 0; s < a.num_states(); ++s) out.AddState(a.IsAccepting(s));
  if (a.start() != kNoState) out.SetStart(a.start());
  for (StateId s = 0; s < a.num_states(); ++s) {
    for (const Nfa::Transition& t : a.TransitionsFrom(s)) {
      for (Symbol b : image(t.symbol)) {
        out.AddTransition(s, b, t.to);
      }
    }
    for (StateId t : a.EpsilonsFrom(s)) out.AddEpsilon(s, t);
  }
  return out;
}

bool AcceptsChoices(const Nfa& nfa,
                    const std::vector<std::vector<Symbol>>& choices) {
  if (nfa.num_states() == 0 || nfa.start() == kNoState) return false;
  Bitset current(nfa.num_states());
  current.Set(nfa.start());
  nfa.EpsilonClosure(current);
  for (const std::vector<Symbol>& letters : choices) {
    Bitset next(nfa.num_states());
    for (uint32_t s : current.ToVector()) {
      for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
        for (Symbol a : letters) {
          if (t.symbol == a) {
            next.Set(t.to);
            break;
          }
        }
      }
    }
    nfa.EpsilonClosure(next);
    current = std::move(next);
    if (current.None()) return false;
  }
  for (uint32_t s : current.ToVector()) {
    if (nfa.IsAccepting(s)) return true;
  }
  return false;
}

bool IsEmpty(const Dfa& dfa) { return !ShortestWitness(dfa).has_value(); }

bool IsEmpty(const Nfa& nfa) {
  if (nfa.num_states() == 0 || nfa.start() == kNoState) return true;
  Bitset seen(nfa.num_states());
  std::deque<StateId> queue;
  seen.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    if (nfa.IsAccepting(s)) return false;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (!seen.Test(t.to)) {
        seen.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (StateId t : nfa.EpsilonsFrom(s)) {
      if (!seen.Test(t)) {
        seen.Set(t);
        queue.push_back(t);
      }
    }
  }
  return true;
}

std::optional<std::vector<Symbol>> ShortestWitness(const Dfa& dfa) {
  if (dfa.num_states() == 0 || dfa.start() == kNoState) return std::nullopt;
  std::vector<bool> seen(dfa.num_states(), false);
  // Parent links for witness reconstruction.
  std::vector<StateId> parent(dfa.num_states(), kNoState);
  std::vector<Symbol> via(dfa.num_states(), 0);
  std::deque<StateId> queue;
  seen[dfa.start()] = true;
  queue.push_back(dfa.start());
  StateId found = kNoState;
  while (!queue.empty() && found == kNoState) {
    StateId s = queue.front();
    queue.pop_front();
    if (dfa.IsAccepting(s)) {
      found = s;
      break;
    }
    for (const auto& [symbol, to] : dfa.TransitionsFrom(s)) {
      if (!seen[to]) {
        seen[to] = true;
        parent[to] = s;
        via[to] = symbol;
        queue.push_back(to);
      }
    }
  }
  if (found == kNoState) return std::nullopt;
  std::vector<Symbol> witness;
  for (StateId s = found; s != dfa.start(); s = parent[s]) {
    witness.push_back(via[s]);
  }
  std::reverse(witness.begin(), witness.end());
  return witness;
}

bool Equivalent(const Dfa& a, const Dfa& b, std::span<const Symbol> alphabet) {
  (void)alphabet;  // implicit-dead products already cover the full alphabet
  return IsEmpty(Product(a, b, BoolOp::kDiff)) &&
         IsEmpty(Product(b, a, BoolOp::kDiff));
}

Dfa MinimalDfaOfRegex(const Regex& e, std::span<const Symbol> alphabet) {
  return Minimize(Determinize(CompileRegex(e)), alphabet);
}

Regex NfaToRegex(const Nfa& nfa) {
  if (nfa.num_states() == 0 || nfa.start() == kNoState) return EmptySet();
  // GNFA over states [0, n) plus super-start n and super-accept n+1; edge
  // regexes live in a dense matrix (EmptySet = no edge).
  const size_t n = nfa.num_states();
  const size_t start = n;
  const size_t accept = n + 1;
  std::vector<std::vector<Regex>> edge(
      n + 2, std::vector<Regex>(n + 2, EmptySet()));
  for (StateId s = 0; s < n; ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      edge[s][t.to] = Alt(edge[s][t.to], Sym(t.symbol));
    }
    for (StateId t : nfa.EpsilonsFrom(s)) {
      edge[s][t] = Alt(edge[s][t], Epsilon());
    }
    if (nfa.IsAccepting(s)) edge[s][accept] = Epsilon();
  }
  edge[start][nfa.start()] = Epsilon();

  auto is_empty = [](const Regex& r) {
    return r->kind() == RegexKind::kEmptySet;
  };
  // Eliminate states in min-degree order (fewest in x out rewired pairs),
  // simplifying as we go — both matter enormously for output readability.
  std::vector<bool> eliminated(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t best = n;
    size_t best_cost = SIZE_MAX;
    for (size_t k = 0; k < n; ++k) {
      if (eliminated[k]) continue;
      size_t in = 0, out = 0;
      for (size_t i = 0; i < n + 2; ++i) {
        if (i != k && !is_empty(edge[i][k])) ++in;
        if (i != k && !is_empty(edge[k][i])) ++out;
      }
      if (in * out < best_cost) {
        best_cost = in * out;
        best = k;
      }
    }
    size_t k = best;
    eliminated[k] = true;
    Regex loop = Star(edge[k][k]);
    for (size_t i = 0; i < n + 2; ++i) {
      if (i == k || is_empty(edge[i][k])) continue;
      for (size_t j = 0; j < n + 2; ++j) {
        if (j == k || is_empty(edge[k][j])) continue;
        edge[i][j] = SimplifyRegex(
            Alt(edge[i][j], Concat(Concat(edge[i][k], loop), edge[k][j])));
      }
    }
    for (size_t i = 0; i < n + 2; ++i) {
      edge[i][k] = EmptySet();
      edge[k][i] = EmptySet();
    }
  }
  return SimplifyRegex(edge[start][accept]);
}

MultiDfa ProductAll(std::span<const Dfa> components,
                    std::span<const Symbol> alphabet) {
  BudgetScope scope(ExecBudget::Unlimited());
  Result<MultiDfa> out = ProductAllBounded(components, alphabet, scope);
  HEDGEQ_CHECK_MSG(out.ok(), "unbounded ProductAll cannot fail");
  return std::move(out).value();
}

Result<MultiDfa> ProductAllBounded(std::span<const Dfa> components,
                                   std::span<const Symbol> alphabet,
                                   BudgetScope& scope) {
  MultiDfa out;
  out.component_accepts.resize(components.size());

  std::map<std::vector<StateId>, StateId> ids;
  std::deque<std::vector<StateId>> worklist;

  Status charge_status;
  auto intern = [&](std::vector<StateId> tuple) -> StateId {
    auto it = ids.find(tuple);
    if (it != ids.end()) return it->second;
    StateId id = out.dfa.AddState(false);
    for (size_t i = 0; i < components.size(); ++i) {
      bool acc = tuple[i] != kNoState && components[i].IsAccepting(tuple[i]);
      out.component_accepts[i].push_back(acc);
    }
    if (charge_status.ok()) {
      Status st = scope.ChargeStates(1, "strre/product");
      if (st.ok()) {
        st = scope.ChargeBytes(
            2 * tuple.size() * sizeof(StateId) + components.size() + 64,
            "strre/product");
      }
      if (!st.ok()) charge_status = std::move(st);
    }
    ids.emplace(tuple, id);
    worklist.push_back(std::move(tuple));
    return id;
  };

  std::vector<StateId> start(components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    start[i] = components[i].num_states() == 0 ? kNoState
                                               : components[i].start();
  }
  intern(std::move(start));

  while (!worklist.empty()) {
    if (!charge_status.ok()) return charge_status;
    std::vector<StateId> tuple = std::move(worklist.front());
    worklist.pop_front();
    StateId from = ids.at(tuple);
    HEDGEQ_RETURN_IF_ERROR(scope.ChargeSteps(
        alphabet.size() * components.size() + 1, "strre/product"));
    for (Symbol a : alphabet) {
      std::vector<StateId> next(components.size());
      for (size_t i = 0; i < components.size(); ++i) {
        next[i] = components[i].Next(tuple[i], a);
      }
      StateId to = intern(std::move(next));
      out.dfa.SetTransition(from, a, to);
    }
  }
  if (!charge_status.ok()) return charge_status;
  return out;
}

}  // namespace hedgeq::strre
