#ifndef HEDGEQ_STRRE_OPS_H_
#define HEDGEQ_STRRE_OPS_H_

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "strre/automaton.h"
#include "strre/regex.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::strre {

/// Thompson construction: NFA accepting L(e).
Nfa CompileRegex(const Regex& e);

/// Subset construction. The result keeps the dead sink implicit (absent
/// transitions reject); only reachable, useful subsets become states.
Dfa Determinize(const Nfa& nfa);

/// Budget-charged subset construction: every interned subset counts against
/// the scope's states and bytes; kResourceExhausted (with the count
/// reached) when a cap trips.
Result<Dfa> DeterminizeBounded(const Nfa& nfa, BudgetScope& scope);

/// Makes the transition function total over `alphabet` by materializing an
/// explicit rejecting sink (if any transition was missing).
Dfa Complete(const Dfa& dfa, std::span<const Symbol> alphabet);

/// DFA for alphabet^* \ L(dfa).
Dfa Complement(const Dfa& dfa, std::span<const Symbol> alphabet);

/// Moore partition-refinement minimization over `alphabet`. The result is
/// the unique minimal DFA (up to naming) with the sink kept implicit.
Dfa Minimize(const Dfa& dfa, std::span<const Symbol> alphabet);

/// Language-level boolean combination of two DFAs by product construction.
enum class BoolOp { kAnd, kOr, kDiff };
Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);

/// Synchronous product of two NFAs (epsilon moves interleaved): accepts
/// L(a) ∩ L(b). State count is |a|·|b|.
Nfa IntersectNfa(const Nfa& a, const Nfa& b);

/// NFA combinators (Thompson-style glue; inputs are copied in).
Nfa UnionNfa(const Nfa& a, const Nfa& b);
Nfa ConcatNfa(const Nfa& a, const Nfa& b);
Nfa StarNfa(const Nfa& a);
/// Views a DFA as an NFA.
Nfa NfaFromDfa(const Dfa& d);
/// NFA for the mirror image { w_k...w_1 | w_1...w_k in L(a) }.
Nfa ReverseNfa(const Nfa& a);

/// String homomorphism by symbol substitution-with-sets: every transition on
/// symbol s is replaced by one transition per element of image(s). With
/// singleton images this is a plain relabeling homomorphism; used for the
/// map h of Theorem 5 and xi of Theorem 4.
Nfa SubstituteSets(const Nfa& a,
                   const std::function<std::vector<Symbol>(Symbol)>& image);

/// True when some word w1...wk with wi in choices[i] is accepted: subset
/// simulation where every position offers a set of letters.
bool AcceptsChoices(const Nfa& nfa,
                    const std::vector<std::vector<Symbol>>& choices);

/// True when the automaton accepts no string.
bool IsEmpty(const Dfa& dfa);
bool IsEmpty(const Nfa& nfa);

/// A shortest accepted string, or nullopt when the language is empty.
std::optional<std::vector<Symbol>> ShortestWitness(const Dfa& dfa);

/// Language equivalence over `alphabet`.
bool Equivalent(const Dfa& a, const Dfa& b, std::span<const Symbol> alphabet);

/// Convenience: regex -> minimal DFA over `alphabet`.
Dfa MinimalDfaOfRegex(const Regex& e, std::span<const Symbol> alphabet);

/// A regex denoting L(nfa), by GNFA state elimination. Worst-case
/// exponential output size; intended for presenting small automata (e.g.
/// inferred schema content models) to humans.
Regex NfaToRegex(const Nfa& nfa);

/// Synchronous product of many DFAs, with a transition function made total
/// over `alphabet`. Each product state is simultaneously a state of every
/// component (dead components included), so two strings reach the same
/// product state iff no component distinguishes any right-extension of them:
/// the product states are exactly the classes of the right-invariant
/// equivalence of Theorem 4 that saturates every component language.
struct MultiDfa {
  Dfa dfa;
  /// component_accepts[i][s]: component i accepts at product state s.
  std::vector<std::vector<bool>> component_accepts;
};
MultiDfa ProductAll(std::span<const Dfa> components,
                    std::span<const Symbol> alphabet);

/// Budget-charged product: the state count is worst-case the product of the
/// component sizes, so every interned tuple counts against the scope.
Result<MultiDfa> ProductAllBounded(std::span<const Dfa> components,
                                   std::span<const Symbol> alphabet,
                                   BudgetScope& scope);

}  // namespace hedgeq::strre

#endif  // HEDGEQ_STRRE_OPS_H_
