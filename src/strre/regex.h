#ifndef HEDGEQ_STRRE_REGEX_H_
#define HEDGEQ_STRRE_REGEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hedgeq::strre {

/// Symbol of a string regular language. The alphabet is generic: symbols are
/// dense integer ids, typically interned names or hedge-automaton state ids.
using Symbol = uint32_t;

/// Kinds of regex AST nodes.
enum class RegexKind {
  kEmptySet,  // {} : the empty language
  kEpsilon,   // () : the language containing only the empty string
  kSymbol,    // a single alphabet symbol
  kConcat,    // e1 e2
  kUnion,     // e1 | e2
  kStar,      // e*
  kPlus,      // e+  (sugar for e e*)
  kOptional,  // e?  (sugar for e | ())
};

class RegexNode;
/// Regexes are immutable shared trees; copying a Regex is cheap.
using Regex = std::shared_ptr<const RegexNode>;

/// One node of a regex AST. Construct through the factory functions below.
class RegexNode {
 public:
  RegexNode(RegexKind kind, Symbol symbol, Regex left, Regex right)
      : kind_(kind),
        symbol_(symbol),
        left_(std::move(left)),
        right_(std::move(right)) {}

  RegexKind kind() const { return kind_; }
  Symbol symbol() const { return symbol_; }
  const Regex& left() const { return left_; }
  const Regex& right() const { return right_; }

 private:
  RegexKind kind_;
  Symbol symbol_;  // only for kSymbol
  Regex left_;     // operand / left operand
  Regex right_;    // right operand for binary nodes
};

/// The empty language {}.
Regex EmptySet();
/// The empty-string language ().
Regex Epsilon();
/// Single-symbol language.
Regex Sym(Symbol s);
/// Concatenation e1 e2 (simplifies around epsilon / empty set).
Regex Concat(Regex e1, Regex e2);
/// Concatenation of a whole sequence (epsilon when empty).
Regex ConcatAll(const std::vector<Regex>& es);
/// Union e1 | e2 (simplifies around empty set).
Regex Alt(Regex e1, Regex e2);
/// Union of a whole sequence (empty set when empty).
Regex AltAll(const std::vector<Regex>& es);
/// Kleene closure e*.
Regex Star(Regex e);
/// e+.
Regex Plus(Regex e);
/// e?.
Regex Optional(Regex e);
/// The literal string s1 s2 ... sn.
Regex Literal(const std::vector<Symbol>& symbols);

/// Number of AST nodes.
size_t RegexSize(const Regex& e);

/// Structural equality of two regexes.
bool RegexEquals(const Regex& a, const Regex& b);

/// Bottom-up algebraic simplification: flattens and deduplicates unions,
/// absorbs epsilon into stars (()|e e* -> e*), rewrites e e* as e+, and
/// collapses nested closure operators. Language-preserving; used to keep
/// state-elimination output readable.
Regex SimplifyRegex(const Regex& e);

/// Renders using the textual syntax accepted by ParseRegex, with symbols
/// printed through `symbol_name`.
std::string RegexToString(const Regex& e,
                          const std::function<std::string(Symbol)>& symbol_name);

/// Parses the textual regex syntax:
///   expr     := term ('|' term)*
///   term     := factor*
///   factor   := atom ('*' | '+' | '?')*
///   atom     := IDENT | '(' expr ')' | '()' | '{}'
/// IDENT is [A-Za-z0-9_.-]+ and is resolved to a Symbol via `resolve`.
/// Whitespace separates juxtaposed factors.
Result<Regex> ParseRegex(std::string_view text,
                         const std::function<Symbol(std::string_view)>& resolve);

}  // namespace hedgeq::strre

#endif  // HEDGEQ_STRRE_REGEX_H_
