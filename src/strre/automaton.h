#ifndef HEDGEQ_STRRE_AUTOMATON_H_
#define HEDGEQ_STRRE_AUTOMATON_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "strre/regex.h"
#include "util/bitset.h"

namespace hedgeq::strre {

/// Dense automaton state id.
using StateId = uint32_t;

/// Sentinel for "no state" / the implicit dead (rejecting sink) state of a
/// DFA whose transition table omits an entry.
inline constexpr StateId kNoState = UINT32_MAX;

/// Non-deterministic finite automaton with epsilon moves over a generic
/// symbol alphabet. States are created through AddState and are dense.
class Nfa {
 public:
  struct Transition {
    Symbol symbol;
    StateId to;
  };

  Nfa() = default;

  /// Adds a state; the first state added becomes the start state by default.
  StateId AddState(bool accepting = false);

  void AddTransition(StateId from, Symbol symbol, StateId to);
  void AddEpsilon(StateId from, StateId to);
  void SetStart(StateId s) { start_ = s; }
  void SetAccepting(StateId s, bool accepting);

  StateId start() const { return start_; }
  size_t num_states() const { return accepting_.size(); }
  bool IsAccepting(StateId s) const { return accepting_[s]; }
  const std::vector<Transition>& TransitionsFrom(StateId s) const {
    return transitions_[s];
  }
  const std::vector<StateId>& EpsilonsFrom(StateId s) const {
    return epsilons_[s];
  }

  /// Expands `states` to its epsilon closure in place.
  void EpsilonClosure(Bitset& states) const;

  /// Membership by direct subset simulation (no determinization).
  bool Accepts(std::span<const Symbol> word) const;

  /// All symbols appearing on any transition, deduplicated and sorted.
  std::vector<Symbol> AlphabetInUse() const;

 private:
  std::vector<std::vector<Transition>> transitions_;
  std::vector<std::vector<StateId>> epsilons_;
  std::vector<bool> accepting_;
  StateId start_ = kNoState;
};

/// Deterministic finite automaton over a generic alphabet. Transitions not
/// present in the table implicitly lead to a dead rejecting sink; Next
/// reports this as kNoState. Use ops.h/Complete to materialize the sink.
class Dfa {
 public:
  Dfa() = default;

  StateId AddState(bool accepting = false);
  void SetStart(StateId s) { start_ = s; }
  void SetAccepting(StateId s, bool accepting) { accepting_[s] = accepting; }
  void SetTransition(StateId from, Symbol symbol, StateId to);

  StateId start() const { return start_; }
  size_t num_states() const { return accepting_.size(); }
  bool IsAccepting(StateId s) const { return accepting_[s]; }

  /// Successor of `s` on `symbol`; kNoState when the transition is absent
  /// (implicit dead sink) or when s is kNoState itself.
  StateId Next(StateId s, Symbol symbol) const;

  /// State reached from the start on `word` (kNoState if the run dies).
  StateId Run(std::span<const Symbol> word) const;

  bool Accepts(std::span<const Symbol> word) const {
    StateId s = Run(word);
    return s != kNoState && accepting_[s];
  }

  const std::unordered_map<Symbol, StateId>& TransitionsFrom(StateId s) const {
    return transitions_[s];
  }

  /// All symbols appearing on any transition, deduplicated and sorted.
  std::vector<Symbol> AlphabetInUse() const;

 private:
  std::vector<std::unordered_map<Symbol, StateId>> transitions_;
  std::vector<bool> accepting_;
  StateId start_ = kNoState;
};

}  // namespace hedgeq::strre

#endif  // HEDGEQ_STRRE_AUTOMATON_H_
