#include "strre/regex.h"

#include <cctype>

#include "util/strings.h"

namespace hedgeq::strre {

namespace {

Regex Make(RegexKind kind, Symbol symbol, Regex left, Regex right) {
  return std::make_shared<const RegexNode>(kind, symbol, std::move(left),
                                           std::move(right));
}

}  // namespace

Regex EmptySet() {
  static const Regex kEmpty = Make(RegexKind::kEmptySet, 0, nullptr, nullptr);
  return kEmpty;
}

Regex Epsilon() {
  static const Regex kEps = Make(RegexKind::kEpsilon, 0, nullptr, nullptr);
  return kEps;
}

Regex Sym(Symbol s) { return Make(RegexKind::kSymbol, s, nullptr, nullptr); }

Regex Concat(Regex e1, Regex e2) {
  if (e1->kind() == RegexKind::kEmptySet || e2->kind() == RegexKind::kEmptySet)
    return EmptySet();
  if (e1->kind() == RegexKind::kEpsilon) return e2;
  if (e2->kind() == RegexKind::kEpsilon) return e1;
  return Make(RegexKind::kConcat, 0, std::move(e1), std::move(e2));
}

Regex ConcatAll(const std::vector<Regex>& es) {
  Regex out = Epsilon();
  for (const Regex& e : es) out = Concat(out, e);
  return out;
}

Regex Alt(Regex e1, Regex e2) {
  if (e1->kind() == RegexKind::kEmptySet) return e2;
  if (e2->kind() == RegexKind::kEmptySet) return e1;
  return Make(RegexKind::kUnion, 0, std::move(e1), std::move(e2));
}

Regex AltAll(const std::vector<Regex>& es) {
  Regex out = EmptySet();
  for (const Regex& e : es) out = Alt(out, e);
  return out;
}

Regex Star(Regex e) {
  if (e->kind() == RegexKind::kEmptySet || e->kind() == RegexKind::kEpsilon)
    return Epsilon();
  if (e->kind() == RegexKind::kStar) return e;
  return Make(RegexKind::kStar, 0, std::move(e), nullptr);
}

Regex Plus(Regex e) {
  if (e->kind() == RegexKind::kEmptySet) return EmptySet();
  if (e->kind() == RegexKind::kEpsilon) return Epsilon();
  return Make(RegexKind::kPlus, 0, std::move(e), nullptr);
}

Regex Optional(Regex e) {
  if (e->kind() == RegexKind::kEmptySet || e->kind() == RegexKind::kEpsilon)
    return Epsilon();
  return Make(RegexKind::kOptional, 0, std::move(e), nullptr);
}

Regex Literal(const std::vector<Symbol>& symbols) {
  Regex out = Epsilon();
  for (Symbol s : symbols) out = Concat(out, Sym(s));
  return out;
}

size_t RegexSize(const Regex& e) {
  if (e == nullptr) return 0;
  return 1 + RegexSize(e->left()) + RegexSize(e->right());
}

bool RegexEquals(const Regex& a, const Regex& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind() != b->kind()) return false;
  if (a->kind() == RegexKind::kSymbol) return a->symbol() == b->symbol();
  return RegexEquals(a->left(), b->left()) &&
         RegexEquals(a->right(), b->right());
}

namespace {

void FlattenAlt(const Regex& e, std::vector<Regex>& out) {
  if (e->kind() == RegexKind::kUnion) {
    FlattenAlt(e->left(), out);
    FlattenAlt(e->right(), out);
  } else {
    out.push_back(e);
  }
}

void FlattenConcat(const Regex& e, std::vector<Regex>& out) {
  if (e->kind() == RegexKind::kConcat) {
    FlattenConcat(e->left(), out);
    FlattenConcat(e->right(), out);
  } else {
    out.push_back(e);
  }
}

bool ContainsEquivalent(const std::vector<Regex>& list, const Regex& e) {
  for (const Regex& other : list) {
    if (RegexEquals(other, e)) return true;
  }
  return false;
}

}  // namespace

Regex SimplifyRegex(const Regex& e) {
  if (e == nullptr) return e;
  switch (e->kind()) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
    case RegexKind::kSymbol:
      return e;
    case RegexKind::kConcat: {
      // Work over the flattened chain so e e* -> e+ fires regardless of the
      // tree's associativity, as do e* e -> e+ and e* e* -> e*.
      std::vector<Regex> chain;
      FlattenConcat(e, chain);
      for (Regex& part : chain) part = SimplifyRegex(part);
      std::vector<Regex> out_chain;
      for (Regex& part : chain) {
        if (!out_chain.empty()) {
          Regex& prev = out_chain.back();
          if (part->kind() == RegexKind::kStar &&
              RegexEquals(prev, part->left())) {
            prev = Plus(part->left());
            continue;
          }
          if (prev->kind() == RegexKind::kStar &&
              RegexEquals(part, prev->left())) {
            prev = Plus(part);
            continue;
          }
          if (prev->kind() == RegexKind::kStar && RegexEquals(prev, part)) {
            continue;
          }
          // e* e? and e* (e*)? collapse into e*.
          if (prev->kind() == RegexKind::kStar &&
              (part->kind() == RegexKind::kOptional ||
               part->kind() == RegexKind::kStar) &&
              (RegexEquals(prev->left(), part->left()) ||
               RegexEquals(prev, part->left()))) {
            continue;
          }
        }
        out_chain.push_back(std::move(part));
      }
      return ConcatAll(out_chain);
    }
    case RegexKind::kUnion: {
      std::vector<Regex> parts;
      FlattenAlt(e, parts);
      std::vector<Regex> kept;
      bool has_epsilon = false;
      for (Regex& part : parts) {
        Regex p = SimplifyRegex(part);
        if (p->kind() == RegexKind::kEmptySet) continue;
        if (p->kind() == RegexKind::kEpsilon) {
          has_epsilon = true;
          continue;
        }
        if (p->kind() == RegexKind::kOptional) {
          // a? | b == (a | b)?: hoist the epsilon to the whole union.
          has_epsilon = true;
          p = p->left();
        }
        if (!ContainsEquivalent(kept, p)) kept.push_back(std::move(p));
      }
      // Left factoring to fixpoint over concat chains:
      // a | a b -> a b?,  a b | a c -> a (b|c).
      bool factored = true;
      while (factored) {
        factored = false;
        for (size_t i = 0; i < kept.size() && !factored; ++i) {
          for (size_t j = 0; j < kept.size() && !factored; ++j) {
            if (i == j) continue;
            std::vector<Regex> ci, cj;
            FlattenConcat(kept[i], ci);
            FlattenConcat(kept[j], cj);
            if (!RegexEquals(ci[0], cj[0])) continue;
            std::vector<Regex> rest_i(ci.begin() + 1, ci.end());
            std::vector<Regex> rest_j(cj.begin() + 1, cj.end());
            Regex tail = Alt(ConcatAll(rest_i), ConcatAll(rest_j));
            kept[i] = SimplifyRegex(Concat(ci[0], SimplifyRegex(tail)));
            kept.erase(kept.begin() + static_cast<long>(j));
            factored = true;
          }
        }
      }
      if (has_epsilon) {
        // () | e+ -> e*; () | e* -> e*; otherwise () | e -> e?.
        bool absorbed = false;
        for (Regex& k : kept) {
          if (k->kind() == RegexKind::kStar) {
            absorbed = true;
            break;
          }
          if (k->kind() == RegexKind::kPlus) {
            k = Star(k->left());
            absorbed = true;
            break;
          }
          if (k->kind() == RegexKind::kOptional) {
            absorbed = true;
            break;
          }
        }
        if (!absorbed) {
          if (kept.size() == 1) return Optional(kept[0]);
          if (kept.empty()) return Epsilon();
          return Optional(AltAll(kept));
        }
      }
      return AltAll(kept);
    }
    case RegexKind::kStar: {
      Regex inner = SimplifyRegex(e->left());
      // (e+)*, (e?)*, (e*)* all equal e*.
      while (inner->kind() == RegexKind::kStar ||
             inner->kind() == RegexKind::kPlus ||
             inner->kind() == RegexKind::kOptional) {
        inner = inner->left();
      }
      // Inside a star, optional alternatives lose their '?'.
      if (inner->kind() == RegexKind::kUnion) {
        std::vector<Regex> parts;
        FlattenAlt(inner, parts);
        bool stripped = false;
        for (Regex& part : parts) {
          while (part->kind() == RegexKind::kOptional ||
                 part->kind() == RegexKind::kPlus ||
                 part->kind() == RegexKind::kStar) {
            part = part->left();
            stripped = true;
          }
        }
        if (stripped) inner = SimplifyRegex(AltAll(parts));
      }
      return Star(std::move(inner));
    }
    case RegexKind::kPlus: {
      Regex inner = SimplifyRegex(e->left());
      if (inner->kind() == RegexKind::kStar ||
          inner->kind() == RegexKind::kOptional) {
        return Star(inner->left());
      }
      if (inner->kind() == RegexKind::kPlus) return inner;
      return Plus(std::move(inner));
    }
    case RegexKind::kOptional: {
      Regex inner = SimplifyRegex(e->left());
      if (inner->kind() == RegexKind::kStar) return inner;
      if (inner->kind() == RegexKind::kPlus) return Star(inner->left());
      if (inner->kind() == RegexKind::kOptional) return inner;
      return Optional(std::move(inner));
    }
  }
  return e;
}

namespace {

// Precedence levels for printing: union < concat < postfix.
std::string ToStringPrec(const Regex& e,
                         const std::function<std::string(Symbol)>& name,
                         int parent_prec) {
  int prec = 0;
  std::string body;
  switch (e->kind()) {
    case RegexKind::kEmptySet:
      return "{}";
    case RegexKind::kEpsilon:
      return "()";
    case RegexKind::kSymbol:
      return name(e->symbol());
    case RegexKind::kConcat:
      prec = 1;
      body = ToStringPrec(e->left(), name, prec) + " " +
             ToStringPrec(e->right(), name, prec);
      break;
    case RegexKind::kUnion:
      prec = 0;
      body = ToStringPrec(e->left(), name, prec) + "|" +
             ToStringPrec(e->right(), name, prec);
      break;
    case RegexKind::kStar:
      prec = 2;
      body = ToStringPrec(e->left(), name, prec) + "*";
      break;
    case RegexKind::kPlus:
      prec = 2;
      body = ToStringPrec(e->left(), name, prec) + "+";
      break;
    case RegexKind::kOptional:
      prec = 2;
      body = ToStringPrec(e->left(), name, prec) + "?";
      break;
  }
  if (prec < parent_prec) return "(" + body + ")";
  return body;
}

class Parser {
 public:
  Parser(std::string_view text,
         const std::function<Symbol(std::string_view)>& resolve)
      : text_(text), resolve_(resolve) {}

  Result<Regex> Parse() {
    Result<Regex> e = ParseUnion();
    if (!e.ok()) return e;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          StrCat("unexpected character '", text_[pos_], "' at offset ", pos_,
                 " in regex: ", text_));
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return IsIdentChar(c) || c == '(' || c == '{';
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
  }

  // Parenthesized atoms re-enter ParseUnion, so regex nesting maps to
  // native stack depth; bound it so "((((...))))" bombs fail cleanly. 512 holds
  // comfortably within an 8 MiB stack even under ASan's inflated frames
  // (~5 parser frames per nesting level).
  static constexpr size_t kMaxNesting = 512;

  Result<Regex> ParseUnion() {
    if (depth_ >= kMaxNesting) {
      return Status::ResourceExhausted(
          StrCat("regex nesting deeper than ", kMaxNesting, " at offset ",
                 pos_));
    }
    ++depth_;
    Result<Regex> out = ParseUnionImpl();
    --depth_;
    return out;
  }

  Result<Regex> ParseUnionImpl() {
    Result<Regex> left = ParseConcat();
    if (!left.ok()) return left;
    Regex out = std::move(left).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        Result<Regex> right = ParseConcat();
        if (!right.ok()) return right;
        out = Alt(std::move(out), std::move(right).value());
      } else {
        break;
      }
    }
    return out;
  }

  Result<Regex> ParseConcat() {
    Regex out = Epsilon();
    bool any = false;
    while (AtAtomStart()) {
      Result<Regex> f = ParseFactor();
      if (!f.ok()) return f;
      out = Concat(std::move(out), std::move(f).value());
      any = true;
    }
    if (!any) {
      return Status::InvalidArgument(
          StrCat("expected a regex atom at offset ", pos_, " in: ", text_));
    }
    return out;
  }

  Result<Regex> ParseFactor() {
    Result<Regex> atom = ParseAtom();
    if (!atom.ok()) return atom;
    Regex out = std::move(atom).value();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '*') {
        out = Star(std::move(out));
        ++pos_;
      } else if (c == '+') {
        out = Plus(std::move(out));
        ++pos_;
      } else if (c == '?') {
        out = Optional(std::move(out));
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<Regex> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of regex");
    }
    char c = text_[pos_];
    if (c == '{') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '}') {
        pos_ += 2;
        return EmptySet();
      }
      return Status::InvalidArgument(
          StrCat("expected '{}' at offset ", pos_, " in: ", text_));
    }
    if (c == '(') {
      // "()" is epsilon; otherwise a parenthesized sub-expression.
      size_t look = pos_ + 1;
      while (look < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[look]))) {
        ++look;
      }
      if (look < text_.size() && text_[look] == ')') {
        pos_ = look + 1;
        return Epsilon();
      }
      ++pos_;
      Result<Regex> inner = ParseUnion();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument(
            StrCat("missing ')' at offset ", pos_, " in: ", text_));
      }
      ++pos_;
      return inner;
    }
    if (IsIdentChar(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      return Sym(resolve_(text_.substr(start, pos_ - start)));
    }
    return Status::InvalidArgument(
        StrCat("unexpected character '", c, "' at offset ", pos_,
               " in regex: ", text_));
  }

  std::string_view text_;
  const std::function<Symbol(std::string_view)>& resolve_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

std::string RegexToString(
    const Regex& e, const std::function<std::string(Symbol)>& symbol_name) {
  return ToStringPrec(e, symbol_name, 0);
}

Result<Regex> ParseRegex(
    std::string_view text,
    const std::function<Symbol(std::string_view)>& resolve) {
  Parser parser(text, resolve);
  return parser.Parse();
}

}  // namespace hedgeq::strre
