#include "util/interner.h"

#include "util/check.h"

namespace hedgeq {

InternId Interner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  InternId id = static_cast<InternId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<InternId> Interner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& Interner::NameOf(InternId id) const {
  HEDGEQ_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace hedgeq
