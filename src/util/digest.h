#ifndef HEDGEQ_UTIL_DIGEST_H_
#define HEDGEQ_UTIL_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bitset.h"

namespace hedgeq {

/// 128-bit content digest rendered as 32 lowercase hex characters: two
/// independent 64-bit FNV-1a streams (the second lane uses a different
/// offset basis and perturbs each byte). Not cryptographic — collisions
/// are harmless wherever it is used (the cache byte-compares inputs on
/// load; the light checker pairs the chain with sampled full
/// re-derivations) — they only cost a spurious miss or a spot check.
std::string Digest128(std::string_view bytes);

/// Incremental form of the same function, for digest *chains*: feed bytes
/// in any number of Update calls; Hex() renders the running state. Feeding
/// the previous link's Hex() output before the step's own encoding makes
/// each link commit to the whole prefix.
class Digest128Stream {
 public:
  void Update(std::string_view bytes);
  std::string Hex() const;

 private:
  uint64_t a_ = 14695981039346656037ull;
  uint64_t b_ = 0x9ae16a3b2f90404full;
};

/// One link of a certificate digest chain: commits to the previous link's
/// hex rendering and the canonical encoding (width, then backing words as
/// little-endian bytes) of one state set. Chaining links in a fixed section
/// order makes
/// any tampering with the interned sets detectable in O(1) per step,
/// without re-deriving the set (verify::CheckCertificateLight, HQV016).
/// The first link is seeded with an empty previous digest.
std::string DigestChainLink(std::string_view prev_hex, const Bitset& set);

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_DIGEST_H_
