#ifndef HEDGEQ_UTIL_STRINGS_H_
#define HEDGEQ_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hedgeq {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_STRINGS_H_
