#ifndef HEDGEQ_UTIL_FAILPOINT_H_
#define HEDGEQ_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hedgeq::failpoint {

/// Test-only fault injection. Production stages mark their fallible resource
/// acquisitions with HEDGEQ_FAILPOINT("stage/site"); tests arm a point by
/// name to deterministically trigger kResourceExhausted there, proving every
/// public entry point surfaces a clean Status — no abort, no leak, no
/// silently partial answer.
///
/// When nothing is armed, Check costs one relaxed atomic load — safe to
/// leave in release builds.

/// Arms `name`: the (skip+1)-th Check of that name, and every one after,
/// fails. skip=0 fails on the first hit.
void Arm(std::string_view name, uint64_t skip = 0);

/// Disarms `name`; Check returns Ok again.
void Disarm(std::string_view name);

/// Disarms everything (test teardown).
void DisarmAll();

/// How many times `name` was Checked since it was armed (0 when not armed).
uint64_t HitCount(std::string_view name);

/// Names of all currently armed points.
std::vector<std::string> ArmedPoints();

/// The probe: Ok unless `name` is armed and past its skip count.
Status Check(const char* name);

}  // namespace hedgeq::failpoint

/// Propagates an injected failure from an armed failpoint. Place at each
/// resource-acquisition site of a fallible pipeline stage.
#define HEDGEQ_FAILPOINT(name) \
  HEDGEQ_RETURN_IF_ERROR(::hedgeq::failpoint::Check(name))

#endif  // HEDGEQ_UTIL_FAILPOINT_H_
