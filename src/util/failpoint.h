#ifndef HEDGEQ_UTIL_FAILPOINT_H_
#define HEDGEQ_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hedgeq::failpoint {

/// Test-only fault injection. Production stages mark their fallible resource
/// acquisitions with HEDGEQ_FAILPOINT("stage/site"); tests arm a point by
/// name to deterministically trigger kResourceExhausted there, proving every
/// public entry point surfaces a clean Status — no abort, no leak, no
/// silently partial answer.
///
/// When nothing is armed, Check costs one relaxed atomic load — safe to
/// leave in release builds.
///
/// Trigger modes. The chaos harness (serve_chaos_test, `hq serve
/// --failpoint=`) needs faults that are intermittent rather than absorbing,
/// so an armed point carries one of four modes:
///   Arm(name, skip)          the (skip+1)-th Check and every one after fail
///                            (the original absorbing mode)
///   ArmFirstN(name, n)       the first n Checks fail, then the point heals —
///                            models a transient fault that a bounded retry
///                            should survive
///   ArmEveryNth(name, n)     every n-th Check fails (hits n, 2n, 3n, ...)
///   ArmProbability(name, p, seed)
///                            each Check fails with probability p, driven by
///                            a per-point splitmix64 stream seeded with
///                            `seed` — the decision sequence is a pure
///                            function of (seed, hit index), so a chaos run
///                            is reproducible given the same interleaving
/// All modes are thread-safe (the registry mutex covers the counters and the
/// RNG), and re-arming a name replaces its mode and resets its counters.

/// Arms `name`: the (skip+1)-th Check of that name, and every one after,
/// fails. skip=0 fails on the first hit.
void Arm(std::string_view name, uint64_t skip = 0);

/// Arms `name` to fail its first `n` Checks and succeed afterwards.
void ArmFirstN(std::string_view name, uint64_t n);

/// Arms `name` to fail every `n`-th Check (n >= 1; n == 1 always fails).
void ArmEveryNth(std::string_view name, uint64_t n);

/// Arms `name` to fail each Check independently with probability
/// `probability` (clamped to [0,1]), deterministically derived from `seed`.
void ArmProbability(std::string_view name, double probability, uint64_t seed);

/// Arms a point from a textual spec (the `hq serve --failpoint=` syntax):
///   "name"                  -> Arm(name)
///   "name:skip=K"           -> Arm(name, K)
///   "name:first=N"          -> ArmFirstN(name, N)
///   "name:every=N"          -> ArmEveryNth(name, N)
///   "name:p=0.25,seed=42"   -> ArmProbability(name, 0.25, 42) (seed
///                              defaults to 1 when omitted)
/// Returns kInvalidArgument on a malformed spec.
Status ArmSpec(std::string_view spec);

/// Disarms `name`; Check returns Ok again.
void Disarm(std::string_view name);

/// Disarms everything (test teardown).
void DisarmAll();

/// How many times `name` was Checked since it was armed (0 when not armed).
uint64_t HitCount(std::string_view name);

/// How many of those Checks actually failed (0 when not armed). The chaos
/// gate asserts every armed point fired at least once.
uint64_t FiredCount(std::string_view name);

/// Names of all currently armed points.
std::vector<std::string> ArmedPoints();

/// The probe: Ok unless `name` is armed and its mode fires on this hit.
Status Check(const char* name);

}  // namespace hedgeq::failpoint

/// Propagates an injected failure from an armed failpoint. Place at each
/// resource-acquisition site of a fallible pipeline stage.
#define HEDGEQ_FAILPOINT(name) \
  HEDGEQ_RETURN_IF_ERROR(::hedgeq::failpoint::Check(name))

#endif  // HEDGEQ_UTIL_FAILPOINT_H_
