#include "util/status.h"

namespace hedgeq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hedgeq
