#ifndef HEDGEQ_UTIL_BITSET_H_
#define HEDGEQ_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hedgeq {

/// Fixed-capacity dynamic bitset used for state sets during subset
/// constructions. Supports hashing and ordering so canonical subsets can key
/// hash maps.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  /// Clears every bit, keeping the width — lets hot loops reuse one
  /// scratch set instead of reallocating per iteration.
  void ClearAll() { words_.assign(words_.size(), 0); }

  /// True when no bit is set.
  bool None() const;
  /// Number of set bits.
  size_t Count() const;

  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);
  bool Intersects(const Bitset& other) const;

  bool operator==(const Bitset& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  /// Indices of all set bits in ascending order.
  std::vector<uint32_t> ToVector() const;

  /// The backing words, low bits first (unused high bits are zero) — for
  /// allocation-free consumers like the digest-chain hasher.
  const std::vector<uint64_t>& words() const { return words_; }

  /// FNV-style hash over the words.
  size_t Hash() const;

  /// Approximate object-plus-heap footprint in bytes, for budget accounting.
  size_t ApproxBytes() const {
    return sizeof(Bitset) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_BITSET_H_
