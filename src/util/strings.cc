#include "util/strings.h"

namespace hedgeq {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

}  // namespace hedgeq
