#include "util/bitset.h"

#include <bit>

#include "util/check.h"

namespace hedgeq {

bool Bitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

size_t Bitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  HEDGEQ_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  HEDGEQ_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

bool Bitset::Intersects(const Bitset& other) const {
  HEDGEQ_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

size_t Bitset::Hash() const {
  size_t h = 1469598103934665603ULL;
  for (uint64_t w : words_) {
    h ^= static_cast<size_t>(w);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hedgeq
