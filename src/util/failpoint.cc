#include "util/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "util/strings.h"

namespace hedgeq::failpoint {

namespace {

struct ArmState {
  uint64_t skip = 0;
  uint64_t hits = 0;
};

// Fast path: when zero points are armed, Check is one atomic load.
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::unordered_map<std::string, ArmState>& Registry() {
  static auto* r = new std::unordered_map<std::string, ArmState>;
  return *r;
}

}  // namespace

void Arm(std::string_view name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().try_emplace(std::string(name));
  it->second.skip = skip;
  it->second.hits = 0;
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(std::string(name)) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

uint64_t HitCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(std::string(name));
  return it == Registry().end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedPoints() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> out;
  out.reserve(Registry().size());
  for (const auto& [name, state] : Registry()) out.push_back(name);
  return out;
}

Status Check(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::Ok();
  ArmState& state = it->second;
  ++state.hits;
  if (state.hits <= state.skip) return Status::Ok();
  return Status::ResourceExhausted(
      StrCat("injected failure at failpoint '", name, "' (hit ", state.hits,
             ")"));
}

}  // namespace hedgeq::failpoint
