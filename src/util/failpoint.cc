#include "util/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "util/strings.h"

namespace hedgeq::failpoint {

namespace {

enum class Mode {
  kAfterSkip,     // hits > skip fail (absorbing)
  kFirstN,        // hits <= n fail, then healed
  kEveryNth,      // hits % n == 0 fail
  kProbability,   // per-hit coin flip from a deterministic stream
};

struct ArmState {
  Mode mode = Mode::kAfterSkip;
  uint64_t skip = 0;   // kAfterSkip
  uint64_t n = 1;      // kFirstN / kEveryNth
  double p = 0.0;      // kProbability
  uint64_t rng = 0;    // kProbability: splitmix64 state
  uint64_t hits = 0;
  uint64_t fired = 0;
};

// Fast path: when zero points are armed, Check is one atomic load.
std::atomic<int> g_armed_count{0};

std::mutex& Mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::unordered_map<std::string, ArmState>& Registry() {
  static auto* r = new std::unordered_map<std::string, ArmState>;
  return *r;
}

// Registers (or resets) `name` and returns its state. Caller holds Mutex().
ArmState& ArmSlot(std::string_view name) {
  auto [it, inserted] = Registry().try_emplace(std::string(name));
  if (inserted) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  it->second = ArmState{};
  return it->second;
}

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool Fires(ArmState& state) {
  switch (state.mode) {
    case Mode::kAfterSkip:
      return state.hits > state.skip;
    case Mode::kFirstN:
      return state.hits <= state.n;
    case Mode::kEveryNth:
      return state.n != 0 && state.hits % state.n == 0;
    case Mode::kProbability: {
      // 53 uniform mantissa bits; the stream depends only on (seed, hit
      // index), never on wall clock or address layout.
      const double u =
          static_cast<double>(SplitMix64(state.rng) >> 11) * 0x1.0p-53;
      return u < state.p;
    }
  }
  return false;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

void Arm(std::string_view name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmState& state = ArmSlot(name);
  state.mode = Mode::kAfterSkip;
  state.skip = skip;
}

void ArmFirstN(std::string_view name, uint64_t n) {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmState& state = ArmSlot(name);
  state.mode = Mode::kFirstN;
  state.n = n;
}

void ArmEveryNth(std::string_view name, uint64_t n) {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmState& state = ArmSlot(name);
  state.mode = Mode::kEveryNth;
  state.n = n == 0 ? 1 : n;
}

void ArmProbability(std::string_view name, double probability, uint64_t seed) {
  std::lock_guard<std::mutex> lock(Mutex());
  ArmState& state = ArmSlot(name);
  state.mode = Mode::kProbability;
  state.p = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0 : probability);
  // Fold the point name into the seed so two points armed with the same
  // seed still draw distinct streams.
  uint64_t mixed = seed;
  for (char c : name) mixed = mixed * 1099511628211ULL + static_cast<uint8_t>(c);
  state.rng = mixed;
}

Status ArmSpec(std::string_view spec) {
  const size_t colon = spec.find(':');
  const std::string_view name = spec.substr(0, colon);
  if (name.empty()) {
    return Status::InvalidArgument("failpoint spec has an empty name");
  }
  if (colon == std::string_view::npos) {
    Arm(name);
    return Status::Ok();
  }
  std::string_view rest = spec.substr(colon + 1);
  // Split "k=v[,k=v]" pairs.
  uint64_t skip = 0, first = 0, every = 0, seed = 1;
  double p = -1.0;
  bool has_skip = false, has_first = false, has_every = false;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrCat("failpoint spec '", spec, "': expected key=value, got '",
                 pair, "'"));
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key == "skip" && ParseU64(value, &skip)) {
      has_skip = true;
    } else if (key == "first" && ParseU64(value, &first)) {
      has_first = true;
    } else if (key == "every" && ParseU64(value, &every) && every > 0) {
      has_every = true;
    } else if (key == "seed" && ParseU64(value, &seed)) {
    } else if (key == "p") {
      char* end = nullptr;
      const std::string value_str(value);
      p = std::strtod(value_str.c_str(), &end);
      if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            StrCat("failpoint spec '", spec, "': bad probability '", value,
                   "'"));
      }
    } else {
      return Status::InvalidArgument(
          StrCat("failpoint spec '", spec, "': unknown key '", key, "'"));
    }
  }
  const int modes = (has_skip ? 1 : 0) + (has_first ? 1 : 0) +
                    (has_every ? 1 : 0) + (p >= 0.0 ? 1 : 0);
  if (modes > 1) {
    return Status::InvalidArgument(
        StrCat("failpoint spec '", spec, "': skip/first/every/p are "
               "mutually exclusive"));
  }
  if (has_first) {
    ArmFirstN(name, first);
  } else if (has_every) {
    ArmEveryNth(name, every);
  } else if (p >= 0.0) {
    ArmProbability(name, p, seed);
  } else {
    Arm(name, skip);
  }
  return Status::Ok();
}

void Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(std::string(name)) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                          std::memory_order_relaxed);
  Registry().clear();
}

uint64_t HitCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(std::string(name));
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FiredCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(std::string(name));
  return it == Registry().end() ? 0 : it->second.fired;
}

std::vector<std::string> ArmedPoints() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> out;
  out.reserve(Registry().size());
  for (const auto& [name, state] : Registry()) out.push_back(name);
  return out;
}

Status Check(const char* name) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) {
    return Status::Ok();
  }
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::Ok();
  ArmState& state = it->second;
  ++state.hits;
  if (!Fires(state)) return Status::Ok();
  ++state.fired;
  return Status::ResourceExhausted(
      StrCat("injected failure at failpoint '", name, "' (hit ", state.hits,
             ")"));
}

}  // namespace hedgeq::failpoint
