#ifndef HEDGEQ_UTIL_RNG_H_
#define HEDGEQ_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace hedgeq {

/// Deterministic, seedable pseudo-random generator (splitmix64). Used by the
/// workload generators and property tests so that every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    HEDGEQ_CHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    HEDGEQ_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0 <= p <= 1).
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  uint64_t state_;
};

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_RNG_H_
