#ifndef HEDGEQ_UTIL_CHECK_H_
#define HEDGEQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checking. These macros abort on failure; they guard
// programmer errors (broken invariants), not user input. User input errors
// are reported through Status/Result instead.

#define HEDGEQ_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HEDGEQ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define HEDGEQ_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HEDGEQ_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, (msg));                        \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // HEDGEQ_UTIL_CHECK_H_
