#include "util/digest.h"

#include <cstdio>

namespace hedgeq {

namespace {
constexpr uint64_t kPrime = 1099511628211ull;

std::string HexOf(uint64_t a, uint64_t b) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return std::string(buf);
}
}  // namespace

std::string Digest128(std::string_view bytes) {
  Digest128Stream stream;
  stream.Update(bytes);
  return stream.Hex();
}

void Digest128Stream::Update(std::string_view bytes) {
  uint64_t a = a_;
  uint64_t b = b_;
  for (unsigned char c : bytes) {
    a = (a ^ c) * kPrime;
    b = (b ^ (c + 0x9eu)) * kPrime;
  }
  a_ = a;
  b_ = b;
}

std::string Digest128Stream::Hex() const { return HexOf(a_, b_); }

std::string DigestChainLink(std::string_view prev_hex, const Bitset& set) {
  Digest128Stream stream;
  stream.Update(prev_hex);
  // Allocation-free canonical encoding: the width, then the backing words,
  // each as 8 explicit little-endian bytes (Bitset zeroes unused high
  // bits, so equal sets encode identically). Chains are recomputed on
  // every warm cache load, so this loop is hot.
  char buf[8];
  auto feed = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
    stream.Update(std::string_view(buf, sizeof buf));
  };
  feed(set.size());
  for (uint64_t word : set.words()) feed(word);
  return stream.Hex();
}

}  // namespace hedgeq
