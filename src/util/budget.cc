#include "util/budget.h"

#include "util/strings.h"

namespace hedgeq {

namespace {

Status Exceeded(const char* stage, const char* what, size_t reached,
                size_t cap, const char* knob) {
  return Status::ResourceExhausted(
      StrCat(stage, ": ", what, " budget exceeded (reached ", reached,
             ", cap ", knob, "=", cap,
             "); retry with a larger ExecBudget"));
}

}  // namespace

Status BudgetScope::ChargeStates(size_t n, const char* stage) {
  states_ += n;
  if (states_ > budget_.max_states) {
    return Exceeded(stage, "state", states_, budget_.max_states,
                    "max_states");
  }
  return Status::Ok();
}

Status BudgetScope::ChargeBytes(size_t n, const char* stage) {
  bytes_ += n;
  if (bytes_ > budget_.max_memory_bytes) {
    return Exceeded(stage, "memory", bytes_, budget_.max_memory_bytes,
                    "max_memory_bytes");
  }
  return Status::Ok();
}

void BudgetScope::ReleaseBytes(size_t n) {
  bytes_ = n > bytes_ ? 0 : bytes_ - n;
}

Status BudgetScope::ChargeSteps(size_t n, const char* stage) {
  steps_ += n;
  if (steps_ > budget_.max_steps) {
    return Exceeded(stage, "step", steps_, budget_.max_steps, "max_steps");
  }
  return Status::Ok();
}

Status BudgetScope::EnterDepth(const char* stage) {
  ++depth_;
  if (depth_ > budget_.max_depth) {
    return Exceeded(stage, "depth", depth_, budget_.max_depth, "max_depth");
  }
  return Status::Ok();
}

void BudgetScope::LeaveDepth() {
  if (depth_ > 0) --depth_;
}

}  // namespace hedgeq
