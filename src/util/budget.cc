#include "util/budget.h"

#include "util/strings.h"

namespace hedgeq {

namespace {

Status Exceeded(const char* stage, const char* what, size_t reached,
                size_t cap, const char* knob) {
  return Status::ResourceExhausted(
      StrCat(stage, ": ", what, " budget exceeded (reached ", reached,
             ", cap ", knob, "=", cap,
             "); retry with a larger ExecBudget"));
}

}  // namespace

Status BudgetScope::CheckDeadline(const char* stage) {
  if (expired_ ||
      (budget_.cancel != nullptr && budget_.cancel->cancelled())) {
    expired_ = true;
    return Status::DeadlineExceeded(
        StrCat(stage, ": operation cancelled or past its deadline"));
  }
  if (!budget_.has_deadline()) return Status::Ok();
  if (--deadline_countdown_ != 0) return Status::Ok();
  deadline_countdown_ = kDeadlineStride;
  if (std::chrono::steady_clock::now() >= budget_.deadline) {
    expired_ = true;
    return Status::DeadlineExceeded(
        StrCat(stage,
               ": wall-clock deadline exceeded; retry with a larger "
               "--deadline-ms or rely on the lazy engine"));
  }
  return Status::Ok();
}

Status BudgetScope::ChargeStates(size_t n, const char* stage) {
  HEDGEQ_RETURN_IF_ERROR(CheckDeadline(stage));
  states_ += n;
  if (states_ > budget_.max_states) {
    return Exceeded(stage, "state", states_, budget_.max_states,
                    "max_states");
  }
  return Status::Ok();
}

Status BudgetScope::ChargeBytes(size_t n, const char* stage) {
  HEDGEQ_RETURN_IF_ERROR(CheckDeadline(stage));
  bytes_ += n;
  if (bytes_ > budget_.max_memory_bytes) {
    return Exceeded(stage, "memory", bytes_, budget_.max_memory_bytes,
                    "max_memory_bytes");
  }
  return Status::Ok();
}

void BudgetScope::ReleaseBytes(size_t n) {
  bytes_ = n > bytes_ ? 0 : bytes_ - n;
}

Status BudgetScope::ChargeSteps(size_t n, const char* stage) {
  HEDGEQ_RETURN_IF_ERROR(CheckDeadline(stage));
  steps_ += n;
  if (steps_ > budget_.max_steps) {
    return Exceeded(stage, "step", steps_, budget_.max_steps, "max_steps");
  }
  return Status::Ok();
}

Status BudgetScope::EnterDepth(const char* stage) {
  // Increment before any failure exit: DepthGuard's destructor decrements
  // unconditionally, so the pairing must hold on the error path too.
  ++depth_;
  HEDGEQ_RETURN_IF_ERROR(CheckDeadline(stage));
  if (depth_ > budget_.max_depth) {
    return Exceeded(stage, "depth", depth_, budget_.max_depth, "max_depth");
  }
  return Status::Ok();
}

void BudgetScope::LeaveDepth() {
  if (depth_ > 0) --depth_;
}

}  // namespace hedgeq
