#ifndef HEDGEQ_UTIL_INTERNER_H_
#define HEDGEQ_UTIL_INTERNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hedgeq {

/// Dense integer id assigned to an interned string. Ids start at 0 and are
/// stable for the lifetime of the interner.
using InternId = uint32_t;

inline constexpr InternId kInvalidInternId = UINT32_MAX;

/// Bidirectional string <-> dense-id mapping. Used for element names
/// (the alphabet Sigma), variables (X) and substitution symbols (Z).
class Interner {
 public:
  Interner() = default;

  /// Returns the id of `name`, interning it if new.
  InternId Intern(std::string_view name);

  /// Returns the id of `name` if already interned.
  std::optional<InternId> Find(std::string_view name) const;

  /// Returns the string for an id. The id must be valid.
  const std::string& NameOf(InternId id) const;

  /// Number of interned strings; valid ids are [0, size()).
  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, InternId> ids_;
};

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_INTERNER_H_
