#ifndef HEDGEQ_UTIL_BUDGET_H_
#define HEDGEQ_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/status.h"

namespace hedgeq {

/// Cooperative cancellation token. The owner (a CLI signal handler, a server
/// request context, a test) flips it once; every BudgetScope holding a
/// pointer to it fails its next Charge* with kDeadlineExceeded. Reads are a
/// single relaxed atomic load, so tokens are safe to consult from hot
/// preprocessing loops; the token must outlive every scope that watches it.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for the exponential preprocessing stages (HRE
/// compilation, Theorem 1 determinization, the Theorem 4 pipeline, schema
/// algebra). Determinization is worst-case exponential — the paper only
/// conjectures it is "usually efficient" — so every such stage consults a
/// budget and fails with kResourceExhausted instead of exhausting the
/// machine. Callers that cannot tolerate the failure fall back to lazy
/// (on-the-fly) evaluation; see automata/lazy_dha.h.
///
/// All limits are cumulative across one BudgetScope, so a pipeline that
/// determinizes three automata shares one pool rather than getting three
/// times the cap.
struct ExecBudget {
  /// Maximum interned states (DHA subsets + horizontal sets + lifted DFA
  /// states + class-product states) across the scope.
  size_t max_states = size_t{1} << 20;
  /// Maximum bytes charged for interned sets, transition tables and caches.
  size_t max_memory_bytes = size_t{512} << 20;  // 512 MiB
  /// Maximum elementary preprocessing steps (inner-loop iterations); a
  /// deadline substitute that stays deterministic across machines.
  size_t max_steps = size_t{1} << 30;
  /// Maximum recursion/nesting depth (AST recursion, splice nesting).
  size_t max_depth = 4096;

  /// Wall-clock deadline (steady clock); the default-constructed epoch value
  /// means "no deadline". Unlike max_steps — a deterministic deadline
  /// substitute — this is a real-time bound for interactive callers
  /// (`hq --deadline-ms`): any Charge* past the deadline fails with
  /// kDeadlineExceeded, and stages with a lazy equivalent degrade to it
  /// exactly as they do on kResourceExhausted.
  std::chrono::steady_clock::time_point deadline{};
  /// Optional cooperative cancellation; not owned, may be null, must outlive
  /// every scope created from this budget. Cancellation surfaces as
  /// kDeadlineExceeded too (same callers, same degradation paths).
  const CancelToken* cancel = nullptr;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// Sets the deadline `ms` milliseconds from now.
  void SetDeadlineAfterMs(uint64_t ms) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(static_cast<int64_t>(ms));
  }

  /// A budget that never trips (all limits at numeric max).
  static ExecBudget Unlimited() {
    ExecBudget b;
    b.max_states = std::numeric_limits<size_t>::max();
    b.max_memory_bytes = std::numeric_limits<size_t>::max();
    b.max_steps = std::numeric_limits<size_t>::max();
    b.max_depth = std::numeric_limits<size_t>::max();
    return b;
  }
};

/// Mutable accounting against one ExecBudget. Create one scope per user
/// operation (compile a query, build a validator) and thread it through
/// every stage so the caps are global to the operation. Not thread-safe;
/// scopes are cheap, make one per operation.
///
/// Every Charge* returns kResourceExhausted with the count reached and the
/// cap in the message, so callers can log it and retry with a larger budget.
class BudgetScope {
 public:
  explicit BudgetScope(const ExecBudget& budget) : budget_(budget) {}
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// Charges `n` interned states against max_states. `stage` names the
  /// charging stage for the error message ("determinize", "phr/product"...).
  Status ChargeStates(size_t n, const char* stage);
  /// Charges `n` bytes against max_memory_bytes.
  Status ChargeBytes(size_t n, const char* stage);
  /// Releases `n` previously charged bytes (cache eviction).
  void ReleaseBytes(size_t n);
  /// Charges `n` elementary steps against max_steps.
  Status ChargeSteps(size_t n, const char* stage);

  /// Deadline/cancellation probe: kDeadlineExceeded when the budget's
  /// cancel token fired or its wall-clock deadline passed, Ok otherwise.
  /// Every Charge* runs this, so stages that account their work are
  /// automatically cancellable; long uncharged loops may call it directly.
  /// The clock is only read every few calls (the token every call), keeping
  /// the probe cheap enough for inner loops.
  Status CheckDeadline(const char* stage);

  /// Nesting-depth accounting; prefer the RAII DepthGuard below.
  Status EnterDepth(const char* stage);
  void LeaveDepth();

  size_t states_used() const { return states_; }
  size_t bytes_used() const { return bytes_; }
  size_t steps_used() const { return steps_; }
  size_t depth() const { return depth_; }
  const ExecBudget& budget() const { return budget_; }

 private:
  // How many CheckDeadline calls skip the clock read between real reads.
  static constexpr uint32_t kDeadlineStride = 32;

  ExecBudget budget_;
  size_t states_ = 0;
  size_t bytes_ = 0;
  size_t steps_ = 0;
  size_t depth_ = 0;
  uint32_t deadline_countdown_ = 1;  // first check reads the clock
  bool expired_ = false;             // deadline verdicts are sticky
};

/// RAII depth guard: increments the scope's depth on construction,
/// decrements on destruction. Check status() immediately after construction:
///
///   DepthGuard depth(scope, "hre/compile");
///   HEDGEQ_RETURN_IF_ERROR(depth.status());
class DepthGuard {
 public:
  DepthGuard(BudgetScope& scope, const char* stage)
      : scope_(scope), status_(scope.EnterDepth(stage)) {}
  ~DepthGuard() { scope_.LeaveDepth(); }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

  const Status& status() const { return status_; }

 private:
  BudgetScope& scope_;
  Status status_;
};

}  // namespace hedgeq

#endif  // HEDGEQ_UTIL_BUDGET_H_
