#ifndef HEDGEQ_UTIL_STATUS_H_
#define HEDGEQ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace hedgeq {

/// Error categories used throughout the library. The library does not use
/// exceptions; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input (bad regex, bad XML, bad grammar)
  kNotFound,         // lookup misses (unknown symbol, unknown nonterminal)
  kFailedPrecondition,
  kResourceExhausted,  // configured limits exceeded (e.g. determinization cap)
  kInternal,
  kDeadlineExceeded,  // wall-clock deadline passed or operation cancelled
};

/// Human-readable name of a StatusCode ("ok", "invalid-argument", ...).
const char* StatusCodeName(StatusCode code);

/// True for the failure codes a budgeted pipeline stage may *degrade* on
/// rather than propagate: a blown resource budget or a missed wall-clock
/// deadline. Both mean "the eager construction was cut short, not wrong",
/// so callers with a lazy equivalent (query/evaluator, query/selection,
/// schema/streaming) fall back to it; every other code is a real error.
inline bool IsDegradable(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// error Result is a checked programmer error.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: intended implicit
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    HEDGEQ_CHECK_MSG(!std::get<Status>(state_).ok(),
                     "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  const T& value() const& {
    HEDGEQ_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(state_);
  }
  T& value() & {
    HEDGEQ_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(state_);
  }
  T&& value() && {
    HEDGEQ_CHECK_MSG(ok(), status().message().c_str());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace hedgeq

/// Propagates an error Status from a Result/Status expression.
#define HEDGEQ_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::hedgeq::Status hedgeq_status__ = (expr);        \
    if (!hedgeq_status__.ok()) return hedgeq_status__; \
  } while (false)

#endif  // HEDGEQ_UTIL_STATUS_H_
