#include "serve/serve.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hedgeq::serve {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

std::string DeweyString(const hedge::Hedge& h, hedge::NodeId n) {
  std::string out;
  for (uint32_t step : h.DeweyOf(n)) out += "/" + std::to_string(step);
  return out.empty() ? "/" : out;
}

/// Serializes a thread-compatible DeterminizeCache behind an external
/// mutex. The engine shares the mutex with its vocabulary lock because the
/// wrapped cache renders entry keys through the vocabulary, and interning
/// from a concurrently parsing worker would race those reads.
class LockedCache : public automata::DeterminizeCache {
 public:
  LockedCache(automata::DeterminizeCache* inner, std::mutex* mu)
      : inner_(inner), mu_(mu) {}

  bool Lookup(const automata::Nha& input, automata::Determinized* out,
              automata::DeterminizeWitness* witness) override {
    std::lock_guard<std::mutex> lock(*mu_);
    return inner_->Lookup(input, out, witness);
  }
  void Store(const automata::Nha& input, const automata::Determinized& out,
             const automata::DeterminizeWitness& witness) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->Store(input, out, witness);
  }
  bool LookupScoped(std::string_view key_material, const automata::Nha& input,
                    automata::Determinized* out,
                    automata::DeterminizeWitness* witness) override {
    std::lock_guard<std::mutex> lock(*mu_);
    return inner_->LookupScoped(key_material, input, out, witness);
  }
  void StoreScoped(std::string_view key_material, const automata::Nha& input,
                   const automata::Determinized& out,
                   const automata::DeterminizeWitness& witness) override {
    std::lock_guard<std::mutex> lock(*mu_);
    inner_->StoreScoped(key_material, input, out, witness);
  }

 private:
  automata::DeterminizeCache* inner_;
  std::mutex* mu_;
};

}  // namespace

const char* OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kDegraded:
      return "degraded";
    case Outcome::kRetried:
      return "retried";
    case Outcome::kShed:
      return "shed";
    case Outcome::kError:
      return "error";
  }
  return "error";
}

Engine::Engine(hedge::Vocabulary& vocab, EngineOptions options)
    : vocab_(vocab), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_cap == 0) options_.queue_cap = 1;
  if (options_.retry.max_attempts < 1) options_.retry.max_attempts = 1;
  if (options_.breaker.failure_threshold < 1) {
    options_.breaker.failure_threshold = 1;
  }
}

Engine::~Engine() { Stop(); }

void Engine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  // Wrap the process determinize-cache hook for the pool's lifetime; the
  // installed cache (hq's AutomatonCache) is thread-compatible only.
  if (automata::DeterminizeCache* prev = automata::GetDeterminizeCache()) {
    prev_cache_ = prev;
    locked_cache_ = std::make_unique<LockedCache>(prev, &vocab_mu_);
    automata::SetDeterminizeCache(locked_cache_.get());
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void Engine::ShedNow(std::promise<Response>* promise, Status status,
                     uint64_t queue_wait_us) {
  Response resp;
  resp.outcome = Outcome::kShed;
  resp.status = std::move(status);
  resp.queue_wait_us = queue_wait_us;
  tallies_.shed.fetch_add(1, std::memory_order_relaxed);
  tallies_.completed.fetch_add(1, std::memory_order_relaxed);
  HEDGEQ_OBS_COUNT(obs::metrics::kServeShed, 1);
  promise->set_value(std::move(resp));
}

std::future<Response> Engine::Submit(std::string query_text,
                                     std::string label) {
  tallies_.submitted.fetch_add(1, std::memory_order_relaxed);
  Item item;
  item.query = std::move(query_text);
  item.label = std::move(label);
  item.enqueue = Clock::now();
  if (options_.deadline_set) {
    // Re-armed per request at admission: the deadline window covers this
    // request's queue wait + execution, never a previous request's.
    item.deadline =
        item.enqueue + std::chrono::milliseconds(
                           static_cast<int64_t>(options_.deadline_ms));
  }
  std::future<Response> future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ || stopping_) {
      ShedNow(&item.promise, Status::FailedPrecondition("shed: draining"), 0);
      return future;
    }
    if (queue_.size() >= options_.queue_cap) {
      ShedNow(&item.promise,
              Status::ResourceExhausted(StrCat(
                  "shed: admission queue full (cap ", options_.queue_cap,
                  ")")),
              0);
      return future;
    }
    item.id = next_id_++;
    queue_.push_back(std::move(item));
    HEDGEQ_OBS_GAUGE_SET(obs::metrics::kServeQueueDepth, queue_.size());
  }
  tallies_.admitted.fetch_add(1, std::memory_order_relaxed);
  HEDGEQ_OBS_COUNT(obs::metrics::kServeAdmitted, 1);
  cv_.notify_one();
  return future;
}

void Engine::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      item = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      HEDGEQ_OBS_GAUGE_SET(obs::metrics::kServeQueueDepth, queue_.size());
    }
    Response resp = Process(item);
    // Tally before resolving the future: a caller that sees its future
    // ready must also see the outcome reflected in counters().
    switch (resp.outcome) {
      case Outcome::kOk:
        tallies_.ok.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::kDegraded:
        tallies_.degraded.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::kRetried:
        tallies_.retried.fetch_add(1, std::memory_order_relaxed);
        break;
      case Outcome::kShed:
        tallies_.shed.fetch_add(1, std::memory_order_relaxed);
        HEDGEQ_OBS_COUNT(obs::metrics::kServeShed, 1);
        break;
      case Outcome::kError:
        tallies_.errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    tallies_.completed.fetch_add(1, std::memory_order_relaxed);
    item.promise.set_value(std::move(resp));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    idle_cv_.notify_all();
  }
}

Response Engine::Process(Item& item) {
  Response resp;
  obs::QueryScope scope(item.label.empty() ? item.query : item.label);
  const Clock::time_point popped = Clock::now();
  resp.queue_wait_us = MicrosBetween(item.enqueue, popped);
  HEDGEQ_OBS_OBSERVE(obs::metrics::kHistQueueWaitUs, resp.queue_wait_us);
  if (item.deadline != Clock::time_point{} && popped >= item.deadline) {
    // Queue-time deadline: the request waited its whole window in the
    // queue, so it is shed without ever executing.
    resp.outcome = Outcome::kShed;
    resp.status = Status::DeadlineExceeded(
        StrCat("shed: queue wait ", resp.queue_wait_us,
               "us exceeded the request deadline; never executed"));
  } else {
    ExecuteWithRetry(item, &resp);
  }
  scope.Annotate("outcome", OutcomeName(resp.outcome));
  if (resp.breaker_was_open) scope.Annotate("breaker", "open");
  resp.scope = scope.Snapshot();
  return resp;
}

void Engine::ExecuteWithRetry(const Item& item, Response* resp) {
  uint64_t backoff_ms = options_.retry.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    resp->attempts = attempt;
    // The engine's transient-fault site: a stand-in for flaky per-request
    // resource acquisition (scratch files, network fetches). Only failures
    // injected *here* are retryable; everything surfaced by execution
    // itself is semantic or a deadline.
    Status transient = failpoint::Check("serve/exec");
    Status status =
        transient.ok() ? ExecuteOnce(item, resp) : std::move(transient);
    if (status.ok()) {
      if (attempt > 1) {
        resp->outcome = Outcome::kRetried;
      } else if (resp->degraded) {
        resp->outcome = Outcome::kDegraded;
      } else {
        resp->outcome = Outcome::kOk;
      }
      return;
    }
    if (status.code() == StatusCode::kDeadlineExceeded) {
      resp->outcome = Outcome::kShed;
      resp->status = std::move(status);
      return;
    }
    const bool retryable = !transient.ok();
    if (!retryable || attempt >= options_.retry.max_attempts) {
      resp->outcome = Outcome::kError;
      resp->status = std::move(status);
      return;
    }
    const Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(
                           static_cast<int64_t>(backoff_ms));
    if (item.deadline != Clock::time_point{} && wake >= item.deadline) {
      resp->outcome = Outcome::kShed;
      resp->status = Status::DeadlineExceeded(
          "shed: retry backoff would exceed the request deadline");
      return;
    }
    tallies_.retry_attempts.fetch_add(1, std::memory_order_relaxed);
    HEDGEQ_OBS_COUNT(obs::metrics::kServeRetry, 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(backoff_ms)));
    backoff_ms = std::min(backoff_ms * 2, options_.retry.backoff_max_ms);
    if (backoff_ms == 0) backoff_ms = 1;
  }
}

Status Engine::ExecuteOnce(const Item& item, Response* resp) {
  resp->answer.clear();
  resp->located = 0;
  resp->degraded = false;
  resp->breaker_was_open = false;

  std::shared_ptr<const xml::XmlDocument> doc;
  {
    std::lock_guard<std::mutex> lock(doc_mu_);
    doc = doc_;
  }
  if (doc == nullptr) {
    return Status::FailedPrecondition(
        "no document loaded (use 'load' or 'gen' first)");
  }

  std::optional<query::SelectionQuery> query;
  {
    std::lock_guard<std::mutex> lock(vocab_mu_);
    Result<query::SelectionQuery> parsed =
        query::ParseSelectionQuery(item.query, vocab_);
    if (!parsed.ok()) return parsed.status();
    query.emplace(std::move(*parsed));
  }

  // Memo first: a memoized evaluator is an eager-clean, already-proven
  // artifact, so it is served even while the breaker is open.
  std::shared_ptr<const query::SelectionEvaluator> eval;
  if (options_.memoize) {
    std::lock_guard<std::mutex> lock(memo_mu_);
    auto it = memo_.find(item.query);
    if (it != memo_.end()) eval = it->second;
  }

  if (eval == nullptr) {
    const ExecMode mode = BreakerAdmit();
    resp->breaker_was_open = mode == ExecMode::kLazyOnly;
    ExecBudget budget = options_.budget;
    budget.deadline = item.deadline;  // {} = none
    budget.cancel = &cancel_;
    if (mode == ExecMode::kLazyOnly) {
      // Starve the eager stages so Create degrades straight to the lazy
      // engines without paying for exponential preprocessing.
      budget.max_states = 1;
    }
    Result<query::SelectionEvaluator> created =
        query::SelectionEvaluator::Create(*query, budget);
    if (!created.ok()) {
      if (mode != ExecMode::kLazyOnly) BreakerReport(mode, false);
      return created.status();
    }
    auto owned = std::make_shared<query::SelectionEvaluator>(
        std::move(*created));
    const bool fallback = owned->fallback_used();
    if (mode != ExecMode::kLazyOnly) BreakerReport(mode, !fallback);
    resp->degraded = fallback || mode == ExecMode::kLazyOnly;
    if (options_.memoize && !resp->degraded) {
      std::lock_guard<std::mutex> lock(memo_mu_);
      memo_.emplace(item.query, owned);
    }
    eval = std::move(owned);
  }

  // Execution-time deadline probe: Locate is linear and infallible, so the
  // deadline is enforced at its boundaries (plus inside every budgeted
  // Create above).
  if (cancel_.cancelled()) {
    return Status::DeadlineExceeded("shed: engine cancelled");
  }
  if (item.deadline != Clock::time_point{} &&
      Clock::now() >= item.deadline) {
    return Status::DeadlineExceeded(
        "shed: deadline passed before evaluation");
  }

  const std::vector<hedge::NodeId> nodes = eval->LocatedNodes(doc->hedge);
  resp->located = nodes.size();
  {
    std::lock_guard<std::mutex> lock(vocab_mu_);
    resp->answer.reserve(nodes.size());
    for (hedge::NodeId n : nodes) {
      resp->answer.push_back(
          StrCat(DeweyString(doc->hedge, n), "\t",
                 vocab_.symbols.NameOf(doc->hedge.label(n).id)));
    }
  }
  return Status::Ok();
}

Engine::ExecMode Engine::BreakerAdmit() {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  switch (breaker_state_) {
    case BreakerState::kClosed:
      return ExecMode::kEager;
    case BreakerState::kOpen: {
      const auto open_for = Clock::now() - breaker_opened_at_;
      if (open_for >= std::chrono::milliseconds(
                          static_cast<int64_t>(options_.breaker.open_ms))) {
        breaker_state_ = BreakerState::kHalfOpen;
        breaker_probe_inflight_ = true;
        return ExecMode::kProbe;
      }
      return ExecMode::kLazyOnly;
    }
    case BreakerState::kHalfOpen:
      if (!breaker_probe_inflight_) {
        breaker_probe_inflight_ = true;
        return ExecMode::kProbe;
      }
      return ExecMode::kLazyOnly;
  }
  return ExecMode::kEager;
}

void Engine::BreakerReport(ExecMode mode, bool eager_ok) {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (mode == ExecMode::kProbe) {
    breaker_probe_inflight_ = false;
    if (eager_ok) {
      breaker_state_ = BreakerState::kClosed;
      breaker_failures_ = 0;
    } else {
      breaker_state_ = BreakerState::kOpen;
      breaker_opened_at_ = Clock::now();
      tallies_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
      HEDGEQ_OBS_COUNT(obs::metrics::kServeBreakerOpen, 1);
    }
    return;
  }
  if (eager_ok) {
    breaker_failures_ = 0;
    return;
  }
  if (breaker_state_ == BreakerState::kClosed &&
      ++breaker_failures_ >= options_.breaker.failure_threshold) {
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = Clock::now();
    tallies_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
    HEDGEQ_OBS_COUNT(obs::metrics::kServeBreakerOpen, 1);
  }
}

Result<size_t> Engine::LoadDocumentFile(const std::string& path) {
  uint64_t backoff_ms = options_.retry.backoff_base_ms;
  for (int attempt = 1;; ++attempt) {
    Status transient = failpoint::Check("serve/load-doc");
    if (transient.ok()) {
      Result<size_t> loaded = LoadDocumentOnce(path);
      if (loaded.ok()) return loaded;
      // Parse and read errors are semantic: the file will not get better
      // by waiting. Only injected serve/load-doc faults model transient
      // I/O and retry.
      return loaded;
    }
    if (attempt >= options_.retry.max_attempts) {
      return transient;
    }
    tallies_.retry_attempts.fetch_add(1, std::memory_order_relaxed);
    HEDGEQ_OBS_COUNT(obs::metrics::kServeRetry, 1);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(backoff_ms)));
    backoff_ms = std::min(backoff_ms * 2, options_.retry.backoff_max_ms);
    if (backoff_ms == 0) backoff_ms = 1;
  }
}

Result<size_t> Engine::LoadDocumentOnce(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::NotFound(StrCat("read failed on '", path, "'"));
  const std::string text = buffer.str();
  WaitIdle();
  xml::XmlDocument doc;
  {
    std::lock_guard<std::mutex> lock(vocab_mu_);
    Result<xml::XmlDocument> parsed = xml::ParseXml(text, vocab_);
    if (!parsed.ok()) return parsed.status();
    doc = std::move(*parsed);
  }
  const size_t nodes = doc.hedge.num_nodes();
  {
    std::lock_guard<std::mutex> lock(doc_mu_);
    doc_ = std::make_shared<const xml::XmlDocument>(std::move(doc));
  }
  return nodes;
}

size_t Engine::SetDocument(xml::XmlDocument doc) {
  WaitIdle();
  const size_t nodes = doc.hedge.num_nodes();
  std::lock_guard<std::mutex> lock(doc_mu_);
  doc_ = std::make_shared<const xml::XmlDocument>(std::move(doc));
  return nodes;
}

bool Engine::has_document() const {
  std::lock_guard<std::mutex> lock(doc_mu_);
  return doc_ != nullptr;
}

std::shared_ptr<const xml::XmlDocument> Engine::document() const {
  std::lock_guard<std::mutex> lock(doc_mu_);
  return doc_;
}

void Engine::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

void Engine::Drain() {
  bool need_start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    // Requests queued before Start are still owed a terminal outcome, so
    // drain brings the pool up to flush them. Start() is idempotent.
    need_start = !started_ && !queue_.empty();
  }
  if (need_start) Start();
  cv_.notify_all();
  WaitIdle();
}

void Engine::Stop() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
  if (locked_cache_ != nullptr) {
    automata::SetDeterminizeCache(prev_cache_);
    locked_cache_.reset();
    prev_cache_ = nullptr;
  }
}

void Engine::CancelAll() { cancel_.Cancel(); }

Engine::Counters Engine::counters() const {
  Counters out;
  out.submitted = tallies_.submitted.load(std::memory_order_relaxed);
  out.admitted = tallies_.admitted.load(std::memory_order_relaxed);
  out.completed = tallies_.completed.load(std::memory_order_relaxed);
  out.ok = tallies_.ok.load(std::memory_order_relaxed);
  out.degraded = tallies_.degraded.load(std::memory_order_relaxed);
  out.retried = tallies_.retried.load(std::memory_order_relaxed);
  out.shed = tallies_.shed.load(std::memory_order_relaxed);
  out.errors = tallies_.errors.load(std::memory_order_relaxed);
  out.retry_attempts =
      tallies_.retry_attempts.load(std::memory_order_relaxed);
  out.breaker_trips =
      tallies_.breaker_trips.load(std::memory_order_relaxed);
  return out;
}

Engine::BreakerState Engine::breaker_state() const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breaker_state_;
}

}  // namespace hedgeq::serve
