#ifndef HEDGEQ_SERVE_SERVE_H_
#define HEDGEQ_SERVE_SERVE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "automata/determinize.h"
#include "hedge/hedge.h"
#include "obs/scope.h"
#include "query/selection.h"
#include "util/budget.h"
#include "util/status.h"
#include "xml/xml.h"

namespace hedgeq::serve {

/// The terminal outcome every submitted request gets exactly once.
/// Precedence when several apply: error > shed > retried > degraded > ok
/// (a request that needed a retry AND degraded reports `retried`; the
/// response's `degraded` flag still says so).
enum class Outcome {
  kOk,        // executed eagerly, answer complete
  kDegraded,  // executed, but some stage ran on its lazy engine (budget,
              // injected compile fault, or an open circuit breaker)
  kRetried,   // executed successfully after >= 1 transient-failure retry
  kShed,      // never (fully) executed: queue full, engine draining,
              // queue-wait or execution deadline passed, or cancelled
  kError,     // semantic failure (parse error, no document, non-transient
              // execution failure) — never retried
};

/// Stable lowercase name ("ok", "shed", ...) used in result lines,
/// flight-recorder annotations and tests.
const char* OutcomeName(Outcome outcome);

/// Bounded retry with exponential backoff, applied only to *transient*
/// failures: faults injected at the engine's own I/O failpoints
/// ("serve/exec", "serve/load-doc") — the stand-ins for flaky disk/network
/// resource acquisition. Semantic errors (bad query, missing document) and
/// deadline/cancellation verdicts are never retried, and a retry is
/// abandoned (shed) when its backoff sleep would cross the request
/// deadline.
struct RetryPolicy {
  int max_attempts = 3;          // total attempts, including the first
  uint64_t backoff_base_ms = 1;  // first backoff; doubles per retry
  uint64_t backoff_max_ms = 50;  // backoff cap
};

/// Circuit breaker over the eager (exponential-preprocessing) path.
/// Closed: compile eagerly; each compile that degrades to a lazy engine
/// counts as an eager-path failure, and `failure_threshold` consecutive
/// failures trip the breaker open. Open: requests skip eager
/// preprocessing entirely (compiled lazy-only, outcome `degraded`) so an
/// overloaded or fault-injected eager path cannot burn budget on every
/// request. After `open_ms` the breaker half-opens: exactly one probe
/// request attempts the full eager path — success re-closes, failure
/// re-opens for another `open_ms`.
struct BreakerPolicy {
  int failure_threshold = 5;
  uint64_t open_ms = 100;
};

struct EngineOptions {
  size_t workers = 4;
  size_t queue_cap = 64;  // admission queue bound; overflow is shed

  /// Per-request deadline, re-armed at admission time so it covers queue
  /// wait + execution (the repl's --deadline-ms fix). deadline_set=false
  /// means no deadline; deadline_ms=0 with deadline_set means "already
  /// expired" — every queued request sheds deterministically.
  bool deadline_set = false;
  uint64_t deadline_ms = 0;

  RetryPolicy retry;
  BreakerPolicy breaker;

  /// Base per-request budget; the engine overwrites `deadline`/`cancel`
  /// per request.
  ExecBudget budget{};

  /// Memoize eager-clean evaluators by query text (the repl's warm-cache
  /// behaviour). Degraded evaluators are never memoized: lazy engines
  /// mutate under const and must stay request-private. Turn off to force
  /// every request through the full compile path (chaos tests).
  bool memoize = true;
};

/// What a request resolves to. Exactly one Response is delivered per
/// Submit, through the returned future.
struct Response {
  Outcome outcome = Outcome::kError;
  Status status = Status::Ok();  // non-ok for kShed / kError
  /// One "dewey\tsymbol" line per located node, document order.
  std::vector<std::string> answer;
  size_t located = 0;
  int attempts = 0;  // 0 when shed before any execution attempt
  uint64_t queue_wait_us = 0;
  bool degraded = false;          // some stage ran lazy
  bool breaker_was_open = false;  // forced lazy-only by the breaker
  /// Per-request attribution from the worker's QueryScope (empty when
  /// observability is off).
  obs::ScopeSnapshot scope;
};

/// In-process concurrent query service: a fixed worker pool behind a
/// bounded admission queue, per-request deadlines covering queue +
/// execution, bounded retry for transient faults, a circuit breaker over
/// the eager path, and graceful drain. `hq serve` and `hq repl` both sit
/// on top of this class.
///
/// Threading contract: Submit is thread-safe and may be called from any
/// thread. The control plane (Start/LoadDocumentFile/SetDocument/Drain/
/// Stop) must be called from one thread at a time; document swaps act as
/// barriers (they wait for the pool to go idle, so answers are always
/// computed against one consistent document). The engine serializes all
/// vocabulary access (Interner is not thread-safe) and wraps the process
/// determinize-cache hook in a lock for its lifetime.
class Engine {
 public:
  Engine(hedge::Vocabulary& vocab, EngineOptions options);
  ~Engine();  // Stop()

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Spawns the worker pool. Requests submitted before Start queue up
  /// (the admission bound applies) and run once workers exist.
  void Start();

  /// Admits one query. The returned future always receives exactly one
  /// Response — sheds (queue full, draining, deadline) resolve it too.
  /// `label` names the request's QueryScope (flight-recorder label);
  /// empty uses the query text.
  std::future<Response> Submit(std::string query_text, std::string label = {});

  /// Loads and parses an XML file, then installs it as the served
  /// document. Barrier: waits for in-flight requests first. Transient
  /// read faults (failpoint "serve/load-doc") are retried under the
  /// retry policy. Returns the document node count.
  Result<size_t> LoadDocumentFile(const std::string& path);

  /// Installs an already-built document (the repl's `gen`). Barrier as
  /// above. Returns the node count.
  size_t SetDocument(xml::XmlDocument doc);

  bool has_document() const;
  /// The currently served document (nullptr when none). The snapshot stays
  /// valid even if a later load swaps the document out.
  std::shared_ptr<const xml::XmlDocument> document() const;

  /// Stops admitting (subsequent Submits shed immediately) and waits for
  /// the queue to empty and all in-flight work to finish. Safe to call
  /// more than once.
  void Drain();

  /// Drain + join workers + restore the process determinize-cache hook.
  void Stop();

  /// Cooperative hard-cancel: all in-flight budgeted work fails its next
  /// probe with kDeadlineExceeded (those requests shed). Irreversible for
  /// this engine instance; pair with Drain for a forced shutdown.
  void CancelAll();

  /// Engine-lifetime tallies (independent of the obs registry, so tests
  /// and the CLI summary need no --metrics).
  struct Counters {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;  // futures resolved, any outcome
    uint64_t ok = 0;
    uint64_t degraded = 0;
    uint64_t retried = 0;
    uint64_t shed = 0;
    uint64_t errors = 0;
    uint64_t retry_attempts = 0;  // individual backoff retries
    uint64_t breaker_trips = 0;   // closed/half-open -> open transitions
  };
  Counters counters() const;

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const;

  hedge::Vocabulary& vocab() { return vocab_; }
  /// Serializes every vocabulary read/write (parse, intern, NameOf).
  /// Callers doing vocabulary work outside the engine while requests may
  /// be in flight must hold this.
  std::mutex& vocab_mutex() { return vocab_mu_; }

  const EngineOptions& options() const { return options_; }

 private:
  struct Item {
    uint64_t id = 0;
    std::string query;
    std::string label;
    std::chrono::steady_clock::time_point enqueue{};
    std::chrono::steady_clock::time_point deadline{};  // {} = none
    std::promise<Response> promise;
  };

  enum class ExecMode { kEager, kLazyOnly, kProbe };

  void WorkerLoop();
  Response Process(Item& item);
  void ExecuteWithRetry(const Item& item, Response* resp);
  Status ExecuteOnce(const Item& item, Response* resp);
  Result<size_t> LoadDocumentOnce(const std::string& path);
  void WaitIdle();
  void ShedNow(std::promise<Response>* promise, Status status,
               uint64_t queue_wait_us);

  ExecMode BreakerAdmit();
  void BreakerReport(ExecMode mode, bool eager_ok);

  hedge::Vocabulary& vocab_;
  EngineOptions options_;

  std::mutex vocab_mu_;

  mutable std::mutex mu_;  // queue + lifecycle
  std::condition_variable cv_;       // workers wait for items
  std::condition_variable idle_cv_;  // barriers wait for quiescence
  std::deque<Item> queue_;
  size_t inflight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  bool started_ = false;
  uint64_t next_id_ = 0;
  std::vector<std::thread> workers_;

  mutable std::mutex doc_mu_;
  std::shared_ptr<const xml::XmlDocument> doc_;

  std::mutex memo_mu_;
  std::unordered_map<std::string,
                     std::shared_ptr<const query::SelectionEvaluator>>
      memo_;

  mutable std::mutex breaker_mu_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  int breaker_failures_ = 0;
  bool breaker_probe_inflight_ = false;
  std::chrono::steady_clock::time_point breaker_opened_at_{};

  CancelToken cancel_;

  // The process determinize-cache hook is global and the installed cache
  // is thread-compatible, not thread-safe: for the engine's lifetime it is
  // wrapped in a lock (shared with vocab_mu_ — cache keys render through
  // the vocabulary) and restored on Stop.
  std::unique_ptr<automata::DeterminizeCache> locked_cache_;
  automata::DeterminizeCache* prev_cache_ = nullptr;

  struct AtomicCounters {
    std::atomic<uint64_t> submitted{0}, admitted{0}, completed{0}, ok{0},
        degraded{0}, retried{0}, shed{0}, errors{0}, retry_attempts{0},
        breaker_trips{0};
  };
  AtomicCounters tallies_;
};

}  // namespace hedgeq::serve

#endif  // HEDGEQ_SERVE_SERVE_H_
