#ifndef HEDGEQ_AUTOMATA_STREAMING_H_
#define HEDGEQ_AUTOMATA_STREAMING_H_

#include <algorithm>
#include <vector>

#include "automata/dha.h"

namespace hedgeq::automata {

/// Runs a deterministic hedge automaton over a SAX-style event stream in
/// O(element depth) memory: because the horizontal DFA folds child states
/// left to right, one horizontal state per open element suffices — no tree
/// is ever materialized. Feed events in document order, then query
/// Accepted(). This is the streaming-validation face of Definition 4's
/// bottom-up computation.
class StreamingDhaRun {
 public:
  explicit StreamingDhaRun(const Dha& dha)
      : dha_(dha), final_state_(dha.final_dfa().start()) {}

  void StartElement(hedge::SymbolId name) {
    (void)name;  // the symbol matters on exit, when alpha is applied
    stack_.push_back(dha_.h_start());
    max_depth_ = std::max(max_depth_, stack_.size());
  }

  void EndElement(hedge::SymbolId name) {
    HhState h = stack_.back();
    stack_.pop_back();
    Fold(dha_.Assign(name, h));
  }

  void Text(hedge::VarId variable) { Fold(dha_.VariableState(variable)); }

  /// Is the stream consumed so far — taken as a complete hedge — in the
  /// language? Only meaningful when every element has been closed.
  bool Accepted() const {
    return stack_.empty() && final_state_ != strre::kNoState &&
           dha_.final_dfa().IsAccepting(final_state_);
  }

  bool InProgress() const { return !stack_.empty(); }
  /// Peak number of simultaneously open elements (the memory bound).
  size_t max_depth() const { return max_depth_; }

 private:
  void Fold(HState q) {
    if (stack_.empty()) {
      final_state_ = dha_.final_dfa().Next(final_state_, q);
    } else {
      stack_.back() = dha_.HNext(stack_.back(), q);
    }
  }

  const Dha& dha_;
  std::vector<HhState> stack_;
  strre::StateId final_state_;
  size_t max_depth_ = 0;
};

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_STREAMING_H_
