#ifndef HEDGEQ_AUTOMATA_CONTENT_UNION_H_
#define HEDGEQ_AUTOMATA_CONTENT_UNION_H_

#include <cstdint>
#include <vector>

#include "automata/nha.h"
#include "strre/automaton.h"

namespace hedgeq::automata {

/// All rule content NFAs of an NHA glued into one disjoint automaton so one
/// horizontal state (a set of combined states) simulates every content model
/// at once. Shared by the eager subset construction (Theorem 1,
/// automata/determinize.cc) and the lazy engine (automata/lazy_dha.cc).
struct CombinedContent {
  strre::Nfa nfa;  // letters are NHA state ids; no start/accept used
  std::vector<strre::StateId> starts;  // one per rule
  // accept_info[s]: rules (by index) whose content accepts at combined
  // state s.
  std::vector<std::vector<uint32_t>> accept_info;
};

CombinedContent CombineContents(const Nha& nha);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_CONTENT_UNION_H_
