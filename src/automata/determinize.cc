#include "automata/determinize.h"

#include <atomic>
#include <chrono>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/content_union.h"
#include "obs/catalogue.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/digest.h"
#include "util/failpoint.h"

namespace hedgeq::automata {

using strre::Nfa;

namespace {
// Set once (before main, by the HEDGEQ_CERTIFY static installer) and read on
// every construction; relaxed is enough for a set-once pointer.
std::atomic<DeterminizeValidationHook> g_determinize_hook{nullptr};
// Installed by the CLI (--cache-dir) or a test; set-once per process in
// practice, but acquire/release so an installing thread's cache object is
// visible to construction threads.
std::atomic<DeterminizeCache*> g_determinize_cache{nullptr};
}  // namespace

void SetDeterminizeValidationHook(DeterminizeValidationHook hook) {
  g_determinize_hook.store(hook, std::memory_order_relaxed);
}

DeterminizeValidationHook GetDeterminizeValidationHook() {
  return g_determinize_hook.load(std::memory_order_relaxed);
}

void SetDeterminizeCache(DeterminizeCache* cache) {
  g_determinize_cache.store(cache, std::memory_order_release);
}

DeterminizeCache* GetDeterminizeCache() {
  return g_determinize_cache.load(std::memory_order_acquire);
}

Result<Determinized> Determinize(const Nha& nha, const ExecBudget& budget) {
  BudgetScope scope(budget);
  return Determinize(nha, scope);
}

Result<Determinized> Determinize(const Nha& nha, BudgetScope& scope) {
  return Determinize(nha, scope, nullptr);
}

Result<Determinized> Determinize(const Nha& nha, BudgetScope& scope,
                                 DeterminizeWitness* witness) {
  HEDGEQ_FAILPOINT("determinize/alloc");
  DeterminizeCache* cache = GetDeterminizeCache();
  if (cache != nullptr) {
    // Before the stage span opens: a validated hit means the determinize
    // stage did not run, and the trace/timings must say so.
    Determinized cached{Dha{1, 1, 0, 0}, {}};
    if (cache->Lookup(nha, &cached, witness)) return cached;
  }
  HEDGEQ_OBS_SPAN(span, obs::spans::kDeterminize);
  const auto obs_start = std::chrono::steady_clock::now();
  const size_t obs_steps_before = scope.steps_used();
  // Local attribution accumulators: plain integers in the construction
  // loops, folded into the registry once at the end (bulk attribution keeps
  // the disabled-mode cost at zero inside the loops).
  size_t obs_interned_hits = 0;
  size_t obs_closure_recomputations = 0;
  CombinedContent combined = CombineContents(nha);
  const size_t ncomb = combined.nfa.num_states();
  const size_t nq = nha.num_states();
  HEDGEQ_RETURN_IF_ERROR(
      scope.ChargeBytes(ncomb * 16 + nq * 8, "determinize"));

  // --- DHA states: canonical subsets of NHA states. Sink (empty) is id 0.
  std::unordered_map<Bitset, HState, BitsetHash> subset_ids;
  std::vector<Bitset> subsets;
  auto intern_subset = [&](Bitset subset) -> HState {
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) {
      ++obs_interned_hits;
      return it->second;
    }
    HState id = static_cast<HState>(subsets.size());
    subset_ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };
  // Each interned subset lives twice (map key + vector) plus map overhead.
  auto charge_subsets = [&](size_t prev) -> Status {
    if (subsets.size() == prev) return Status::Ok();
    HEDGEQ_RETURN_IF_ERROR(
        scope.ChargeStates(subsets.size() - prev, "determinize"));
    size_t bytes = 0;
    for (size_t i = prev; i < subsets.size(); ++i) {
      bytes += 2 * subsets[i].ApproxBytes() + 32;
    }
    return scope.ChargeBytes(bytes, "determinize");
  };
  intern_subset(Bitset(nq));  // sink = empty subset

  // Variable/substitution subsets are DHA letters from the start.
  std::unordered_map<hedge::VarId, HState> var_sid;
  for (const auto& [x, states] : nha.var_map()) {
    Bitset b(nq);
    for (HState q : states) b.Set(q);
    var_sid[x] = intern_subset(std::move(b));
  }
  std::unordered_map<hedge::SubstId, HState> subst_sid;
  for (const auto& [z, states] : nha.subst_map()) {
    Bitset b(nq);
    for (HState q : states) b.Set(q);
    subst_sid[z] = intern_subset(std::move(b));
  }
  HEDGEQ_RETURN_IF_ERROR(charge_subsets(0));

  // --- Horizontal states: epsilon-closed sets of combined-content states.
  std::unordered_map<Bitset, HhState, BitsetHash> h_ids;
  std::vector<Bitset> h_sets;
  auto intern_h = [&](Bitset set) -> HhState {
    ++obs_closure_recomputations;
    combined.nfa.EpsilonClosure(set);
    auto it = h_ids.find(set);
    if (it != h_ids.end()) {
      ++obs_interned_hits;
      return it->second;
    }
    HhState id = static_cast<HhState>(h_sets.size());
    h_ids.emplace(set, id);
    h_sets.push_back(std::move(set));
    return id;
  };
  auto charge_h = [&](size_t prev) -> Status {
    if (h_sets.size() == prev) return Status::Ok();
    HEDGEQ_RETURN_IF_ERROR(
        scope.ChargeStates(h_sets.size() - prev, "determinize"));
    size_t bytes = 0;
    for (size_t i = prev; i < h_sets.size(); ++i) {
      bytes += 2 * h_sets[i].ApproxBytes() + 32;
    }
    return scope.ChargeBytes(bytes, "determinize");
  };
  Bitset h0(ncomb);
  for (strre::StateId s : combined.starts) {
    if (s != strre::kNoState) h0.Set(s);
  }
  HhState h_start = intern_h(std::move(h0));
  HEDGEQ_CHECK(h_start == 0);
  HEDGEQ_RETURN_IF_ERROR(charge_h(0));

  // assign_table[h] : symbol -> subset id reached after the rules accepting
  // at h fire. h_trans[h] : subset id -> next horizontal state.
  std::vector<std::map<hedge::SymbolId, HState>> assign_table;
  std::vector<std::vector<HhState>> h_trans;

  size_t h_assigned = 0;          // prefix of h_sets with assigns computed
  // h_trans[h].size() tracks how many subset letters are processed for h.
  while (true) {
    bool progress = false;

    // 1. Compute assignments for newly discovered horizontal states; this
    //    may discover new DHA states (subsets).
    while (h_assigned < h_sets.size()) {
      HEDGEQ_FAILPOINT("determinize/subset");
      const Bitset& hs = h_sets[h_assigned];
      const size_t prev_subsets = subsets.size();
      std::map<hedge::SymbolId, Bitset> per_symbol;
      for (uint32_t cs : hs.ToVector()) {
        for (uint32_t rule_index : combined.accept_info[cs]) {
          const Nha::Rule& rule = nha.rules()[rule_index];
          auto [it, inserted] =
              per_symbol.try_emplace(rule.symbol, Bitset(nq));
          it->second.Set(rule.target);
        }
      }
      std::map<hedge::SymbolId, HState> row;
      for (auto& [symbol, bits] : per_symbol) {
        row[symbol] = intern_subset(std::move(bits));
      }
      HEDGEQ_RETURN_IF_ERROR(
          scope.ChargeSteps(hs.Count() + row.size() + 1, "determinize"));
      HEDGEQ_RETURN_IF_ERROR(charge_subsets(prev_subsets));
      assign_table.push_back(std::move(row));
      ++h_assigned;
      progress = true;
    }

    // 2. Extend horizontal transitions to every known subset letter; this
    //    may discover new horizontal states.
    for (HhState hs = 0; hs < h_sets.size(); ++hs) {
      if (h_trans.size() <= hs) h_trans.emplace_back();
      while (h_trans[hs].size() < subsets.size()) {
        HEDGEQ_FAILPOINT("determinize/htrans");
        HState sid = static_cast<HState>(h_trans[hs].size());
        const Bitset& letter = subsets[sid];
        const size_t prev_h = h_sets.size();
        Bitset next(ncomb);
        size_t steps = 1;
        for (uint32_t cs : h_sets[hs].ToVector()) {
          for (const Nfa::Transition& t :
               combined.nfa.TransitionsFrom(cs)) {
            ++steps;
            if (t.symbol < letter.size() && letter.Test(t.symbol)) {
              next.Set(t.to);
            }
          }
        }
        h_trans[hs].push_back(intern_h(std::move(next)));
        HEDGEQ_RETURN_IF_ERROR(scope.ChargeSteps(steps, "determinize"));
        HEDGEQ_RETURN_IF_ERROR(charge_h(prev_h));
        // The dense transition matrix entry itself.
        HEDGEQ_RETURN_IF_ERROR(
            scope.ChargeBytes(sizeof(HhState), "determinize"));
        progress = true;
      }
    }

    if (!progress) break;
  }

  // --- Assemble the DHA.
  const HState num_states = static_cast<HState>(subsets.size());
  const HhState num_h = static_cast<HhState>(h_sets.size());
  Dha dha(num_states, num_h, h_start, /*sink=*/0);
  for (HhState hs = 0; hs < num_h; ++hs) {
    for (HState sid = 0; sid < num_states; ++sid) {
      dha.SetHTransition(hs, sid, h_trans[hs][sid]);
    }
    for (const auto& [symbol, sid] : assign_table[hs]) {
      dha.SetAssign(symbol, hs, sid);
    }
  }
  for (const auto& [x, sid] : var_sid) dha.SetVariableState(x, sid);
  for (const auto& [z, sid] : subst_sid) dha.SetSubstState(z, sid);
  const bool want_witness = witness != nullptr || cache != nullptr ||
                            GetDeterminizeValidationHook() != nullptr;
  std::vector<Bitset> final_sets;
  Result<strre::Dfa> final_dfa = LiftToSubsetsBounded(
      nha.final_nfa(), subsets, scope, want_witness ? &final_sets : nullptr);
  if (!final_dfa.ok()) return final_dfa.status();
  // Seeded-bug failpoint for the translation-validation tests: silently
  // corrupt the construction (flip acceptance of the final DFA's start
  // state) so the certificate checker and the differential oracle can prove
  // they catch it. Check() is used as a probe — the armed "failure" flips
  // the bit instead of propagating.
  if (!failpoint::Check("determinize/flip-final").ok()) {
    strre::StateId s0 = final_dfa->start();
    if (s0 != strre::kNoState) {
      final_dfa->SetAccepting(s0, !final_dfa->IsAccepting(s0));
    }
  }
  dha.SetFinalDfa(std::move(final_dfa).value());

  Determinized out{std::move(dha), std::move(subsets)};
  uint64_t certify_ns = 0;
  if (want_witness) {
    DeterminizeWitness local;
    local.h_sets = std::move(h_sets);
    local.final_sets = std::move(final_sets);
    // Digest chain over every interned set, in the fixed section order the
    // light checker recomputes (subsets, h_sets, final_sets).
    local.chain.reserve(out.subsets.size() + local.h_sets.size() +
                        local.final_sets.size());
    std::string prev;
    for (const std::vector<Bitset>* section :
         {&out.subsets, &local.h_sets, &local.final_sets}) {
      for (const Bitset& set : *section) {
        prev = DigestChainLink(prev, set);
        local.chain.push_back(prev);
      }
    }
    if (DeterminizeValidationHook hook = GetDeterminizeValidationHook()) {
      HEDGEQ_OBS_SPAN(certify_span, obs::spans::kDeterminizeCertify);
      const auto certify_start = std::chrono::steady_clock::now();
      HEDGEQ_RETURN_IF_ERROR(hook(nha, out, local));
      certify_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - certify_start)
              .count());
    }
    if (cache != nullptr) cache->Store(nha, out, local);
    if (witness != nullptr) *witness = std::move(local);
  }
  if (obs::Enabled()) {
    const uint64_t total_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - obs_start)
            .count());
    const size_t num_subsets = out.subsets.size();
    const size_t num_h = out.dha.num_h_states();
    HEDGEQ_OBS_COUNT(obs::metrics::kDetSubsetsExplored, num_subsets);
    HEDGEQ_OBS_COUNT(obs::metrics::kDetHSetsExplored, num_h);
    HEDGEQ_OBS_COUNT(obs::metrics::kDetClosureRecomputations,
                     obs_closure_recomputations);
    HEDGEQ_OBS_COUNT(obs::metrics::kDetInternedBitsetHits, obs_interned_hits);
    HEDGEQ_OBS_COUNT(obs::metrics::kDetSteps,
                     scope.steps_used() - obs_steps_before);
    HEDGEQ_OBS_OBSERVE(obs::metrics::kHistDetSubsets, num_subsets);
    HEDGEQ_OBS_COUNT(obs::metrics::kDetTotalNs, total_ns);
    if (certify_ns != 0) {
      HEDGEQ_OBS_COUNT(obs::metrics::kDetCertifyNs, certify_ns);
      if (total_ns != 0) {
        HEDGEQ_OBS_GAUGE_SET(obs::metrics::kDetCertifyFracPct,
                             100 * certify_ns / total_ns);
      }
    }
    span.AddArg("subsets_explored", num_subsets);
    span.AddArg("h_sets_explored", num_h);
    span.AddArg("closure_recomputations", obs_closure_recomputations);
    span.AddArg("interned_bitset_hits", obs_interned_hits);
    span.AddArg("certify_ns", certify_ns);
  }
  return out;
}

Result<strre::Dfa> LiftToSubsetsBounded(const Nfa& lang,
                                        std::span<const Bitset> subsets,
                                        BudgetScope& scope) {
  return LiftToSubsetsBounded(lang, subsets, scope, nullptr);
}

Result<strre::Dfa> LiftToSubsetsBounded(const Nfa& lang,
                                        std::span<const Bitset> subsets,
                                        BudgetScope& scope,
                                        std::vector<Bitset>* state_sets) {
  HEDGEQ_FAILPOINT("determinize/lift");
  strre::Dfa out;
  if (lang.num_states() == 0 || lang.start() == strre::kNoState) {
    // Empty language: a single non-accepting total state.
    strre::StateId dead = out.AddState(false);
    for (strre::Symbol sid = 0; sid < subsets.size(); ++sid) {
      out.SetTransition(dead, sid, dead);
    }
    if (state_sets != nullptr) {
      state_sets->assign(1, Bitset(lang.num_states()));
    }
    return out;
  }

  std::unordered_map<Bitset, strre::StateId, BitsetHash> ids;
  std::vector<Bitset> worklist;

  auto intern = [&](Bitset set) -> strre::StateId {
    lang.EpsilonClosure(set);
    auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    bool accepting = false;
    for (uint32_t s : set.ToVector()) {
      if (lang.IsAccepting(s)) {
        accepting = true;
        break;
      }
    }
    strre::StateId id = out.AddState(accepting);
    ids.emplace(set, id);
    worklist.push_back(std::move(set));
    return id;
  };
  auto charge = [&](size_t prev) -> Status {
    if (worklist.size() == prev) return Status::Ok();
    HEDGEQ_RETURN_IF_ERROR(
        scope.ChargeStates(worklist.size() - prev, "determinize/lift"));
    size_t bytes = 0;
    for (size_t i = prev; i < worklist.size(); ++i) {
      bytes += 2 * worklist[i].ApproxBytes() + 32;
    }
    return scope.ChargeBytes(bytes, "determinize/lift");
  };

  Bitset start(lang.num_states());
  start.Set(lang.start());
  intern(std::move(start));
  HEDGEQ_RETURN_IF_ERROR(charge(0));

  for (size_t wi = 0; wi < worklist.size(); ++wi) {
    Bitset current = worklist[wi];  // copy: worklist grows during the loop
    strre::StateId from = ids.at(current);
    for (strre::Symbol sid = 0; sid < subsets.size(); ++sid) {
      const Bitset& letter = subsets[sid];
      const size_t prev = worklist.size();
      Bitset next(lang.num_states());
      size_t steps = 1;
      for (uint32_t s : current.ToVector()) {
        for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
          ++steps;
          if (t.symbol < letter.size() && letter.Test(t.symbol)) {
            next.Set(t.to);
          }
        }
      }
      out.SetTransition(from, sid, intern(std::move(next)));
      HEDGEQ_RETURN_IF_ERROR(scope.ChargeSteps(steps, "determinize/lift"));
      HEDGEQ_RETURN_IF_ERROR(charge(prev));
    }
  }
  // worklist[i] is the epsilon-closed NFA state set of DFA state i.
  if (state_sets != nullptr) *state_sets = std::move(worklist);
  return out;
}

strre::Dfa LiftToSubsets(const Nfa& lang, std::span<const Bitset> subsets) {
  BudgetScope scope(ExecBudget::Unlimited());
  Result<strre::Dfa> out = LiftToSubsetsBounded(lang, subsets, scope);
  HEDGEQ_CHECK_MSG(out.ok(), "unbounded LiftToSubsets cannot fail");
  return std::move(out).value();
}

}  // namespace hedgeq::automata
