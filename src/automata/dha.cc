#include "automata/dha.h"

#include <algorithm>

#include "strre/ops.h"
#include "util/check.h"

namespace hedgeq::automata {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::LabelKind;
using hedge::NodeId;

Dha::Dha(HState num_states, HhState num_h, HhState h_start, HState sink)
    : num_states_(num_states),
      num_h_(num_h),
      h_start_(h_start),
      sink_(sink),
      h_trans_(static_cast<size_t>(num_h) * num_states, h_start) {
  HEDGEQ_CHECK(sink < num_states && h_start < num_h);
}

void Dha::SetAssign(hedge::SymbolId symbol, HhState h, HState q) {
  auto [it, inserted] = assign_.try_emplace(
      symbol, std::vector<HState>(num_h_, sink_));
  it->second[h] = q;
}

HState Dha::Assign(hedge::SymbolId symbol, HhState h) const {
  auto it = assign_.find(symbol);
  return it == assign_.end() ? sink_ : it->second[h];
}

HState Dha::VariableState(hedge::VarId x) const {
  auto it = var_states_.find(x);
  return it == var_states_.end() ? sink_ : it->second;
}

HState Dha::SubstState(hedge::SubstId z) const {
  auto it = subst_states_.find(z);
  return it == subst_states_.end() ? sink_ : it->second;
}

namespace {

// Dense per-run view of a sparse id->row map: one hash lookup per distinct
// id instead of one per node.
template <typename Value>
class DenseRows {
 public:
  template <typename Map>
  explicit DenseRows(const Map& map) {
    for (const auto& [id, row] : map) {
      if (id >= rows_.size()) rows_.resize(id + 1, nullptr);
      rows_[id] = &row;
    }
  }
  const Value* Get(InternId id) const {
    return id < rows_.size() ? rows_[id] : nullptr;
  }

 private:
  std::vector<const Value*> rows_;
};

}  // namespace

std::vector<HState> Dha::Run(const Hedge& h) const {
  std::vector<HState> states(h.num_nodes(), sink_);
  DenseRows<std::vector<HState>> assign(assign_);
  // Children have larger arena ids than parents; reverse sweep is bottom-up.
  for (NodeId n = static_cast<NodeId>(h.num_nodes()); n-- > 0;) {
    const hedge::Label label = h.label(n);
    switch (label.kind) {
      case LabelKind::kVariable:
        states[n] = VariableState(label.id);
        break;
      case LabelKind::kSubst:
        states[n] = SubstState(label.id);
        break;
      case LabelKind::kEta:
        states[n] = sink_;
        break;
      case LabelKind::kSymbol: {
        HhState hs = h_start_;
        for (NodeId c = h.first_child(n); c != kNullNode;
             c = h.next_sibling(c)) {
          hs = HNext(hs, states[c]);
        }
        const std::vector<HState>* row = assign.Get(label.id);
        states[n] = row == nullptr ? sink_ : (*row)[hs];
        break;
      }
    }
  }
  return states;
}

bool Dha::Accepts(const Hedge& h) const {
  std::vector<HState> states = Run(h);
  strre::StateId f = final_.start();
  for (NodeId r : h.roots()) {
    f = final_.Next(f, states[r]);
    if (f == strre::kNoState) return false;
  }
  return f != strre::kNoState && final_.IsAccepting(f);
}

Dha::MarkedRun Dha::RunWithMarks(const Hedge& h) const {
  MarkedRun out;
  out.states.assign(h.num_nodes(), sink_);
  out.marks.assign(h.num_nodes(), false);
  DenseRows<std::vector<HState>> assign(assign_);
  for (NodeId n = static_cast<NodeId>(h.num_nodes()); n-- > 0;) {
    const hedge::Label label = h.label(n);
    switch (label.kind) {
      case LabelKind::kVariable:
        out.states[n] = VariableState(label.id);
        break;
      case LabelKind::kSubst:
        out.states[n] = SubstState(label.id);
        break;
      case LabelKind::kEta:
        break;
      case LabelKind::kSymbol: {
        HhState hs = h_start_;
        strre::StateId f = final_.start();
        for (NodeId c = h.first_child(n); c != kNullNode;
             c = h.next_sibling(c)) {
          hs = HNext(hs, out.states[c]);
          f = final_.Next(f, out.states[c]);
        }
        const std::vector<HState>* row = assign.Get(label.id);
        out.states[n] = row == nullptr ? sink_ : (*row)[hs];
        out.marks[n] = f != strre::kNoState && final_.IsAccepting(f);
        break;
      }
    }
  }
  return out;
}

Nha DhaToNha(const Dha& dha, std::span<const hedge::VarId> extra_vars,
             std::span<const hedge::SymbolId> extra_symbols) {
  Nha out;
  out.AddStates(dha.num_states());
  // Symbols the DHA never mentions assign the sink on any child sequence.
  for (hedge::SymbolId symbol : extra_symbols) {
    if (dha.assign_map().contains(symbol)) continue;
    strre::Nfa all;
    strre::StateId s = all.AddState(true);
    for (HState q = 0; q < dha.num_states(); ++q) {
      all.AddTransition(s, q, s);
    }
    out.AddRule(symbol, std::move(all), dha.sink());
  }
  for (const auto& [symbol, assign] : dha.assign_map()) {
    // Content model for (symbol, q): the horizontal DFA with accepting set
    // { h : assign[h] == q }.
    std::vector<HState> targets(assign.begin(), assign.end());
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (HState q : targets) {
      strre::Dfa content;
      for (HhState hs = 0; hs < dha.num_h_states(); ++hs) {
        content.AddState(assign[hs] == q);
      }
      content.SetStart(dha.h_start());
      for (HhState hs = 0; hs < dha.num_h_states(); ++hs) {
        for (HState p = 0; p < dha.num_states(); ++p) {
          content.SetTransition(hs, p, dha.HNext(hs, p));
        }
      }
      out.AddRule(symbol, strre::NfaFromDfa(content), q);
    }
  }
  for (const auto& [x, q] : dha.var_map()) out.AddVariableState(x, q);
  for (hedge::VarId x : extra_vars) {
    if (!dha.var_map().contains(x)) {
      out.AddVariableState(x, dha.VariableState(x));
    }
  }
  for (const auto& [z, q] : dha.subst_map()) out.AddSubstState(z, q);
  out.SetFinal(strre::NfaFromDfa(dha.final_dfa()));
  return out;
}

Dha ComplementDha(const Dha& dha) {
  Dha out = dha;
  std::vector<strre::Symbol> alphabet;
  alphabet.reserve(dha.num_states());
  for (HState q = 0; q < dha.num_states(); ++q) alphabet.push_back(q);
  out.SetFinalDfa(strre::Complement(dha.final_dfa(), alphabet));
  return out;
}

Dha BuildMarkedDha(const Dha& dha,
                   std::span<const hedge::SymbolId> extra_symbols) {
  const HState nq = dha.num_states();
  std::vector<strre::Symbol> alphabet;
  alphabet.reserve(nq);
  for (HState q = 0; q < nq; ++q) alphabet.push_back(q);
  strre::Dfa ftotal = strre::Complete(dha.final_dfa(), alphabet);

  const HhState nh = dha.num_h_states();
  const auto nf = static_cast<HhState>(ftotal.num_states());
  auto hpair = [nf](HhState hs, strre::StateId f) {
    return static_cast<HhState>(hs * nf + static_cast<HhState>(f));
  };
  auto qpair = [](HState q, bool bit) {
    return static_cast<HState>(2 * q + (bit ? 1 : 0));
  };

  Dha out(static_cast<HState>(2 * nq), static_cast<HhState>(nh) * nf,
          hpair(dha.h_start(), ftotal.start()), qpair(dha.sink(), false));

  for (HhState hs = 0; hs < nh; ++hs) {
    for (strre::StateId f = 0; f < ftotal.num_states(); ++f) {
      for (HState q = 0; q < nq; ++q) {
        // Reading (q, bit) moves both components on q; the bit is ignored.
        HhState to = hpair(dha.HNext(hs, q), ftotal.Next(f, q));
        out.SetHTransition(hpair(hs, f), qpair(q, false), to);
        out.SetHTransition(hpair(hs, f), qpair(q, true), to);
      }
    }
  }
  for (const auto& [symbol, assign] : dha.assign_map()) {
    for (HhState hs = 0; hs < nh; ++hs) {
      for (strre::StateId f = 0; f < ftotal.num_states(); ++f) {
        out.SetAssign(symbol, hpair(hs, f),
                      qpair(assign[hs], ftotal.IsAccepting(f)));
      }
    }
  }
  // The mark tests the child sequence only, so it applies to symbols the
  // original automaton never mentions: give them explicit (sink, bit) rows.
  for (hedge::SymbolId symbol : extra_symbols) {
    if (dha.assign_map().contains(symbol)) continue;
    for (HhState hs = 0; hs < nh; ++hs) {
      for (strre::StateId f = 0; f < ftotal.num_states(); ++f) {
        out.SetAssign(symbol, hpair(hs, f),
                      qpair(dha.sink(), ftotal.IsAccepting(f)));
      }
    }
  }
  for (const auto& [x, q] : dha.var_map()) {
    out.SetVariableState(x, qpair(q, false));
  }
  for (const auto& [z, q] : dha.subst_map()) {
    out.SetSubstState(z, qpair(q, false));
  }

  // M-down-e accepts every hedge: a one-state all-accepting final DFA.
  strre::Dfa accept_all;
  strre::StateId s0 = accept_all.AddState(true);
  for (HState q = 0; q < 2 * nq; ++q) accept_all.SetTransition(s0, q, s0);
  out.SetFinalDfa(std::move(accept_all));
  return out;
}

}  // namespace hedgeq::automata
