#ifndef HEDGEQ_AUTOMATA_SERIALIZE_H_
#define HEDGEQ_AUTOMATA_SERIALIZE_H_

#include <string>
#include <string_view>

#include "automata/dha.h"
#include "automata/nha.h"
#include "hedge/hedge.h"

namespace hedgeq::automata {

/// Text serialization of non-deterministic hedge automata, so compiled
/// queries and schemas can be cached across processes. Names (element,
/// variable, substitution) are stored as strings and re-interned on load;
/// state ids and NFA structure are stored verbatim. The format is
/// line-oriented and versioned:
///
///   nha 1
///   states <n>
///   var <name> <q>...
///   subst <name> <q>...
///   rule <symbol> <target>
///   <nfa block>
///   final
///   <nfa block>
///
/// where an nfa block is
///
///   nfa <states> <start|->
///   accept <s>...
///   t <from> <letter> <to>
///   e <from> <to>
///   end
std::string SerializeNha(const Nha& nha, const hedge::Vocabulary& vocab);

/// Inverse of SerializeNha; new names are interned into `vocab`.
Result<Nha> DeserializeNha(std::string_view text, hedge::Vocabulary& vocab);

/// Text serialization of deterministic hedge automata, used by the
/// certificate layer (verify::Certificate) to persist subset-construction
/// output next to its witness. Deterministic byte output: maps are emitted
/// sorted by name/id. Format:
///
///   dha 1
///   states <n> <sink>
///   hstates <num_h> <h_start>
///   h <from> <q> <to>            (omitted when <to> equals h_start)
///   assign <symbol> <h> <q>      (full row, one line per horizontal state)
///   var <name> <q>
///   subst <name> <q>
///   final <states> <start|->
///   accept <s>...
///   d <from> <letter> <to>
///   end
std::string SerializeDha(const Dha& dha, const hedge::Vocabulary& vocab);

/// Inverse of SerializeDha; new names are interned into `vocab`. Rejects
/// structurally malformed input (out-of-range states, duplicate rows,
/// truncated blocks) with kInvalidArgument.
Result<Dha> DeserializeDha(std::string_view text, hedge::Vocabulary& vocab);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_SERIALIZE_H_
