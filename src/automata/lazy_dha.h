#ifndef HEDGEQ_AUTOMATA_LAZY_DHA_H_
#define HEDGEQ_AUTOMATA_LAZY_DHA_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "automata/content_union.h"
#include "automata/nha.h"
#include "hedge/hedge.h"
#include "util/bitset.h"

namespace hedgeq::automata {

/// Which engine answered, and what the lazy engine spent. Returned by every
/// evaluator that can degrade from eager determinization to on-the-fly
/// subset simulation.
struct EvalStats {
  bool fallback_used = false;      // lazy engine (not the eager DHA) ran
  size_t states_materialized = 0;  // distinct subset computations performed
  size_t cache_evictions = 0;      // LRU entries dropped under memory budget
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t peak_cache_bytes = 0;     // high-water mark of cache memory

  /// What one operation spent: the counter-wise difference `after - before`
  /// of two stats() snapshots around it (peak_cache_bytes, a high-water
  /// mark, is carried over from `after`). Lets callers report
  /// per-operation expenditure without mutating a shared engine through
  /// ResetStats.
  static EvalStats Delta(const EvalStats& before, const EvalStats& after) {
    EvalStats d;
    d.fallback_used = after.fallback_used;
    d.states_materialized = after.states_materialized - before.states_materialized;
    d.cache_evictions = after.cache_evictions - before.cache_evictions;
    d.cache_hits = after.cache_hits - before.cache_hits;
    d.cache_misses = after.cache_misses - before.cache_misses;
    d.peak_cache_bytes = after.peak_cache_bytes;
    return d;
  }
};

struct LazyDhaOptions {
  /// Cap on memoization memory; least-recently-used transitions are evicted
  /// beyond it, so evaluation memory stays bounded no matter how many
  /// distinct subsets a document touches.
  size_t max_cache_bytes = size_t{8} << 20;  // 8 MiB
};

/// One freshly computed (cache-miss) lazy step, recorded when an audit sink
/// is enabled. The checker (verify::CheckLazyAudit) recomputes each entry
/// from the NHA alone and compares, so a memoization bug (stale or
/// mis-keyed cache hit can only replay a recorded value) or a subset-step
/// bug surfaces as a mismatch. For horizontal steps `h` and `result` are
/// sets of combined content-NFA states and `subset` is the NHA-state letter
/// read; for assignments `symbol` is set, `subset` is empty, and `result`
/// is the set of assigned NHA states.
struct LazyAuditEntry {
  bool is_assign = false;
  hedge::SymbolId symbol = 0;
  Bitset h;
  Bitset subset;
  Bitset result;
};

/// On-the-fly subset simulation: the lazy counterpart of the Theorem 1
/// subset construction. Where `Determinize` materializes every reachable
/// subset and horizontal set up front (worst-case exponential), LazyDha
/// computes exactly the subsets a given document touches, memoizing
/// horizontal steps and assignments in LRU caches bounded by
/// `max_cache_bytes`. Evaluation therefore runs in time linear in the
/// document (times the cost of a set step) with bounded memory — it can
/// never fail, only slow down — which makes it the graceful-degradation
/// fallback when eager determinization exceeds its ExecBudget.
///
/// States are represented by value as Bitsets (subsets of NHA states for
/// vertical states, epsilon-closed sets of combined content-NFA states for
/// horizontal states), so cache eviction can never invalidate a client's
/// handle. The empty subset is the sink. Methods are const but not
/// thread-safe (the caches mutate); clone one LazyDha per thread.
class LazyDha {
 public:
  explicit LazyDha(Nha nha, LazyDhaOptions options = {});

  const Nha& nha() const { return nha_; }
  const LazyDhaOptions& options() const { return options_; }

  /// The horizontal start set (epsilon closure of every rule content start).
  const Bitset& HStart() const { return h_start_; }

  /// One horizontal step: the set reached from `h` by reading any NHA state
  /// in `subset`. Memoized.
  Bitset HNext(const Bitset& h, const Bitset& subset) const;

  /// alpha(symbol, w) for a child sequence whose horizontal run ended in
  /// `h`: the set of targets of `symbol`-rules accepting at `h`. Memoized.
  Bitset Assign(hedge::SymbolId symbol, const Bitset& h) const;

  /// iota(x) / iota(z) as subsets; unknown ids give the empty (sink) subset.
  Bitset VariableSubset(hedge::VarId x) const;
  Bitset SubstSubset(hedge::SubstId z) const;

  /// Streaming set-simulation of the final language F over subset letters
  /// (the lazy counterpart of the lifted final DFA).
  class FinalRun {
   public:
    explicit FinalRun(const LazyDha& dha);
    void Consume(const Bitset& subset);
    bool Accepting() const;

   private:
    const LazyDha& dha_;
    Bitset current_;  // epsilon-closed set of final-NFA states
  };

  /// Definition 7 / Definition 4: the subset assigned to every node,
  /// indexed by NodeId. Equals Determinize(nha).subsets[Dha::Run(h)[n]].
  std::vector<Bitset> Run(const hedge::Hedge& h) const;

  /// Theorem 3 shortcut: along with the run, whether each symbol node's
  /// child sequence lies in F (the lazy RunWithMarks).
  struct MarkedRun {
    std::vector<Bitset> states;
    std::vector<bool> marks;
  };
  MarkedRun RunWithMarks(const hedge::Hedge& h) const;

  /// Definition 8 acceptance.
  bool Accepts(const hedge::Hedge& h) const;

  /// Thin compatibility accessor: the same numbers are also mirrored into
  /// the process-wide obs::MetricsRegistry (automata.lazy.* metrics) while
  /// observability is enabled.
  const EvalStats& stats() const { return stats_; }
  /// Zeroes the per-instance stats. Non-const by design: resetting is an
  /// observable mutation, unlike the const evaluation methods whose cache
  /// writes are semantically transparent. Callers that only need a
  /// per-operation delta should snapshot stats() before/after instead
  /// (see EvalStats::Delta).
  void ResetStats() { stats_ = EvalStats{}; }

  /// Points the audit log at `sink` (nullptr disables). While enabled,
  /// every cache-miss HNext/Assign computation appends one LazyAuditEntry;
  /// cache hits are not recorded (they replay an already-audited value).
  void EnableAudit(std::vector<LazyAuditEntry>* sink) const { audit_ = sink; }

 private:
  struct HNextKey {
    Bitset h;
    Bitset subset;
    bool operator==(const HNextKey& o) const {
      return h == o.h && subset == o.subset;
    }
  };
  struct HNextKeyHash {
    size_t operator()(const HNextKey& k) const {
      return k.h.Hash() * 1000003u ^ k.subset.Hash();
    }
  };
  struct AssignKey {
    hedge::SymbolId symbol;
    Bitset h;
    bool operator==(const AssignKey& o) const {
      return symbol == o.symbol && h == o.h;
    }
  };
  struct AssignKeyHash {
    size_t operator()(const AssignKey& k) const {
      return k.h.Hash() * 1000003u ^ k.symbol;
    }
  };

  template <typename Key, typename Hash>
  struct LruCache {
    struct Entry {
      Key key;
      Bitset value;
      size_t bytes;
    };
    std::list<Entry> entries;  // front = most recent
    std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index;
    size_t bytes = 0;

    const Bitset* Find(const Key& key) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      entries.splice(entries.begin(), entries, it->second);
      return &it->second->value;
    }
    void Insert(Key key, Bitset value, size_t entry_bytes) {
      entries.push_front(Entry{std::move(key), std::move(value), entry_bytes});
      index.emplace(entries.front().key, entries.begin());
      bytes += entry_bytes;
    }
  };

  void NoteInsert(size_t bytes_added) const;

  Nha nha_;
  LazyDhaOptions options_;
  CombinedContent combined_;
  Bitset h_start_;
  std::unordered_map<hedge::VarId, Bitset> var_subsets_;
  std::unordered_map<hedge::SubstId, Bitset> subst_subsets_;

  mutable LruCache<HNextKey, HNextKeyHash> hnext_cache_;
  mutable LruCache<AssignKey, AssignKeyHash> assign_cache_;
  mutable EvalStats stats_;
  mutable std::vector<LazyAuditEntry>* audit_ = nullptr;
};

/// Runs a LazyDha over a SAX-style event stream in O(element depth) set
/// memory, mirroring StreamingDhaRun (automata/streaming.h): one horizontal
/// set per open element, the final-language simulation at the top level.
class LazyStreamingRun {
 public:
  explicit LazyStreamingRun(const LazyDha& dha)
      : dha_(dha), final_(dha) {}

  void StartElement(hedge::SymbolId name) {
    (void)name;  // the symbol matters on exit, when alpha is applied
    stack_.push_back(dha_.HStart());
    max_depth_ = std::max(max_depth_, stack_.size());
  }

  void EndElement(hedge::SymbolId name) {
    Bitset h = std::move(stack_.back());
    stack_.pop_back();
    Fold(dha_.Assign(name, h));
  }

  void Text(hedge::VarId variable) { Fold(dha_.VariableSubset(variable)); }

  bool Accepted() const { return stack_.empty() && final_.Accepting(); }
  bool InProgress() const { return !stack_.empty(); }
  size_t max_depth() const { return max_depth_; }

 private:
  void Fold(const Bitset& subset) {
    if (stack_.empty()) {
      final_.Consume(subset);
    } else {
      stack_.back() = dha_.HNext(stack_.back(), subset);
    }
  }

  const LazyDha& dha_;
  std::vector<Bitset> stack_;
  LazyDha::FinalRun final_;
  size_t max_depth_ = 0;
};

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_LAZY_DHA_H_
