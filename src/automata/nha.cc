#include "automata/nha.h"

#include <algorithm>
#include <deque>

#include "strre/ops.h"
#include "util/check.h"

namespace hedgeq::automata {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::LabelKind;
using hedge::NodeId;
using strre::Nfa;

HState Nha::AddState() { return static_cast<HState>(num_states_++); }

HState Nha::AddStates(size_t n) {
  HState first = static_cast<HState>(num_states_);
  num_states_ += n;
  return first;
}

void Nha::AddRule(hedge::SymbolId symbol, Nfa content, HState target) {
  HEDGEQ_CHECK(target < num_states_);
  rules_.push_back({symbol, target, std::move(content)});
}

void Nha::SetRuleContent(size_t index, strre::Nfa content) {
  HEDGEQ_CHECK(index < rules_.size());
  rules_[index].content = std::move(content);
}

void Nha::AddVariableState(hedge::VarId x, HState q) {
  HEDGEQ_CHECK(q < num_states_);
  var_states_[x].push_back(q);
}

void Nha::AddSubstState(hedge::SubstId z, HState q) {
  HEDGEQ_CHECK(q < num_states_);
  subst_states_[z].push_back(q);
}

void Nha::RemoveSubstState(hedge::SubstId z, HState q) {
  auto it = subst_states_.find(z);
  if (it == subst_states_.end()) return;
  auto& states = it->second;
  states.erase(std::remove(states.begin(), states.end(), q), states.end());
  if (states.empty()) subst_states_.erase(it);
}

const std::vector<HState>& Nha::VariableStates(hedge::VarId x) const {
  static const std::vector<HState> kEmpty;
  auto it = var_states_.find(x);
  return it == var_states_.end() ? kEmpty : it->second;
}

const std::vector<HState>& Nha::SubstStates(hedge::SubstId z) const {
  static const std::vector<HState> kEmpty;
  auto it = subst_states_.find(z);
  return it == subst_states_.end() ? kEmpty : it->second;
}

namespace {

// Simulates `nfa` over a word of state *sets*: at each step any letter in
// the set may be read. Returns whether some concrete word is accepted.
bool SimulateOverSets(const Nfa& nfa, const std::vector<const Bitset*>& word) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return false;
  Bitset current(nfa.num_states());
  current.Set(nfa.start());
  nfa.EpsilonClosure(current);
  for (const Bitset* letters : word) {
    Bitset next(nfa.num_states());
    for (uint32_t p : current.ToVector()) {
      for (const Nfa::Transition& t : nfa.TransitionsFrom(p)) {
        if (t.symbol < letters->size() && letters->Test(t.symbol)) {
          next.Set(t.to);
        }
      }
    }
    nfa.EpsilonClosure(next);
    current = std::move(next);
    if (current.None()) return false;
  }
  for (uint32_t p : current.ToVector()) {
    if (nfa.IsAccepting(p)) return true;
  }
  return false;
}

// True when `nfa` accepts some word whose letters all lie in `allowed`.
bool NonEmptyOverAlphabet(const Nfa& nfa, const Bitset& allowed) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return false;
  Bitset seen(nfa.num_states());
  std::deque<uint32_t> queue;
  seen.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    uint32_t s = queue.front();
    queue.pop_front();
    if (nfa.IsAccepting(s)) return true;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol < allowed.size() && allowed.Test(t.symbol) &&
          !seen.Test(t.to)) {
        seen.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (uint32_t t : nfa.EpsilonsFrom(s)) {
      if (!seen.Test(t)) {
        seen.Set(t);
        queue.push_back(t);
      }
    }
  }
  return false;
}

}  // namespace

std::vector<Bitset> Nha::ComputeStateSets(const Hedge& h) const {
  std::vector<Bitset> sets(h.num_nodes(), Bitset(num_states_));
  // Children always have larger arena ids than their parents, so a reverse
  // id sweep is a bottom-up (post-order-compatible) traversal.
  for (NodeId n = static_cast<NodeId>(h.num_nodes()); n-- > 0;) {
    const hedge::Label label = h.label(n);
    switch (label.kind) {
      case LabelKind::kVariable:
        for (HState q : VariableStates(label.id)) sets[n].Set(q);
        break;
      case LabelKind::kSubst:
        for (HState q : SubstStates(label.id)) sets[n].Set(q);
        break;
      case LabelKind::kEta:
        break;  // eta never carries automaton states
      case LabelKind::kSymbol: {
        std::vector<const Bitset*> word;
        for (NodeId c = h.first_child(n); c != kNullNode;
             c = h.next_sibling(c)) {
          word.push_back(&sets[c]);
        }
        for (const Rule& rule : rules_) {
          if (rule.symbol != label.id) continue;
          if (sets[n].Test(rule.target)) continue;
          if (SimulateOverSets(rule.content, word)) sets[n].Set(rule.target);
        }
        break;
      }
    }
  }
  return sets;
}

bool Nha::Accepts(const Hedge& h) const {
  std::vector<Bitset> sets = ComputeStateSets(h);
  std::vector<const Bitset*> word;
  for (NodeId r : h.roots()) word.push_back(&sets[r]);
  return SimulateOverSets(final_, word);
}

HState CopyNhaInto(const Nha& src, Nha& dst) {
  HState offset = dst.AddStates(src.num_states());
  auto shift = [offset](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + offset};
  };
  for (const Nha::Rule& rule : src.rules()) {
    dst.AddRule(rule.symbol, strre::SubstituteSets(rule.content, shift),
                rule.target + offset);
  }
  for (const auto& [x, states] : src.var_map()) {
    for (HState q : states) dst.AddVariableState(x, q + offset);
  }
  for (const auto& [z, states] : src.subst_map()) {
    for (HState q : states) dst.AddSubstState(z, q + offset);
  }
  return offset;
}

Nha IntersectNha(const Nha& a, const Nha& b) {
  Nha out;
  const size_t nb = b.num_states();
  out.AddStates(a.num_states() * nb);
  auto encode = [nb](HState qa, HState qb) {
    return static_cast<HState>(qa * nb + qb);
  };

  // Product of two content NFAs reading pair letters.
  auto product_content = [&](const Nfa& ca, const Nfa& cb) {
    Nfa prod;
    const size_t pb = cb.num_states();
    for (size_t i = 0; i < ca.num_states() * pb; ++i) prod.AddState(false);
    if (ca.num_states() == 0 || cb.num_states() == 0) return prod;
    auto pid = [pb](uint32_t sa, uint32_t sb) {
      return static_cast<strre::StateId>(sa * pb + sb);
    };
    prod.SetStart(pid(ca.start(), cb.start()));
    for (uint32_t sa = 0; sa < ca.num_states(); ++sa) {
      for (uint32_t sb = 0; sb < cb.num_states(); ++sb) {
        if (ca.IsAccepting(sa) && cb.IsAccepting(sb)) {
          prod.SetAccepting(pid(sa, sb), true);
        }
        for (uint32_t ta : ca.EpsilonsFrom(sa)) {
          prod.AddEpsilon(pid(sa, sb), pid(ta, sb));
        }
        for (uint32_t tb : cb.EpsilonsFrom(sb)) {
          prod.AddEpsilon(pid(sa, sb), pid(sa, tb));
        }
        for (const Nfa::Transition& ta : ca.TransitionsFrom(sa)) {
          for (const Nfa::Transition& tb : cb.TransitionsFrom(sb)) {
            prod.AddTransition(pid(sa, sb), encode(ta.symbol, tb.symbol),
                               pid(ta.to, tb.to));
          }
        }
      }
    }
    return prod;
  };

  for (const Nha::Rule& ra : a.rules()) {
    for (const Nha::Rule& rb : b.rules()) {
      if (ra.symbol != rb.symbol) continue;
      out.AddRule(ra.symbol, product_content(ra.content, rb.content),
                  encode(ra.target, rb.target));
    }
  }
  for (const auto& [x, states_a] : a.var_map()) {
    for (HState qa : states_a) {
      for (HState qb : b.VariableStates(x)) {
        out.AddVariableState(x, encode(qa, qb));
      }
    }
  }
  for (const auto& [z, states_a] : a.subst_map()) {
    for (HState qa : states_a) {
      for (HState qb : b.SubstStates(z)) {
        out.AddSubstState(z, encode(qa, qb));
      }
    }
  }
  out.SetFinal(product_content(a.final_nfa(), b.final_nfa()));
  return out;
}

Nha UnionNha(const Nha& a, const Nha& b) {
  Nha out;
  HState oa = CopyNhaInto(a, out);
  HState ob = CopyNhaInto(b, out);
  auto shift_a = [oa](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + oa};
  };
  auto shift_b = [ob](strre::Symbol q) {
    return std::vector<strre::Symbol>{q + ob};
  };
  out.SetFinal(strre::UnionNfa(strre::SubstituteSets(a.final_nfa(), shift_a),
                               strre::SubstituteSets(b.final_nfa(), shift_b)));
  return out;
}

Bitset ReachableStates(const Nha& nha) {
  Bitset reachable(nha.num_states());
  for (const auto& [x, states] : nha.var_map()) {
    (void)x;
    for (HState q : states) reachable.Set(q);
  }
  for (const auto& [z, states] : nha.subst_map()) {
    (void)z;
    for (HState q : states) reachable.Set(q);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : nha.rules()) {
      if (reachable.Test(rule.target)) continue;
      if (NonEmptyOverAlphabet(rule.content, reachable)) {
        reachable.Set(rule.target);
        changed = true;
      }
    }
  }
  return reachable;
}

bool IsEmptyNha(const Nha& nha) {
  Bitset reachable = ReachableStates(nha);
  return !NonEmptyOverAlphabet(nha.final_nfa(), reachable);
}

std::optional<std::vector<strre::Symbol>> ShortestWordOverAlphabet(
    const Nfa& nfa, const Bitset& allowed) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) {
    return std::nullopt;
  }
  std::vector<int> parent(nfa.num_states(), -1);
  std::vector<strre::Symbol> via(nfa.num_states(), 0);
  std::vector<bool> via_letter(nfa.num_states(), false);
  Bitset seen(nfa.num_states());
  std::deque<uint32_t> queue;
  seen.Set(nfa.start());
  queue.push_back(nfa.start());
  uint32_t found = UINT32_MAX;
  while (!queue.empty() && found == UINT32_MAX) {
    uint32_t s = queue.front();
    queue.pop_front();
    if (nfa.IsAccepting(s)) {
      found = s;
      break;
    }
    for (uint32_t t : nfa.EpsilonsFrom(s)) {
      if (!seen.Test(t)) {
        seen.Set(t);
        parent[t] = static_cast<int>(s);
        via_letter[t] = false;
        queue.push_back(t);
      }
    }
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol < allowed.size() && allowed.Test(t.symbol) &&
          !seen.Test(t.to)) {
        seen.Set(t.to);
        parent[t.to] = static_cast<int>(s);
        via[t.to] = t.symbol;
        via_letter[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }
  if (found == UINT32_MAX) return std::nullopt;
  std::vector<strre::Symbol> word;
  for (uint32_t s = found; parent[s] != -1;
       s = static_cast<uint32_t>(parent[s])) {
    if (via_letter[s]) word.push_back(via[s]);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::optional<std::vector<strre::Symbol>> ShortestWordContaining(
    const Nfa& nfa, const Bitset& allowed, strre::Symbol letter) {
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) {
    return std::nullopt;
  }
  // BFS over (nfa state, have-we-read-`letter`) pairs.
  const size_t n = nfa.num_states();
  auto encode = [n](uint32_t s, bool bit) { return s + (bit ? n : 0); };
  std::vector<int> parent(2 * n, -1);
  std::vector<strre::Symbol> via(2 * n, 0);
  std::vector<bool> via_letter(2 * n, false);
  Bitset seen(2 * n);
  std::deque<uint32_t> queue;
  uint32_t start = encode(nfa.start(), false);
  seen.Set(start);
  queue.push_back(start);
  uint32_t found = UINT32_MAX;
  while (!queue.empty() && found == UINT32_MAX) {
    uint32_t node = queue.front();
    queue.pop_front();
    uint32_t s = node % n;
    bool bit = node >= n;
    if (bit && nfa.IsAccepting(s)) {
      found = node;
      break;
    }
    auto visit = [&](uint32_t next, bool is_letter, strre::Symbol sym) {
      if (seen.Test(next)) return;
      seen.Set(next);
      parent[next] = static_cast<int>(node);
      via[next] = sym;
      via_letter[next] = is_letter;
      queue.push_back(next);
    };
    for (uint32_t t : nfa.EpsilonsFrom(s)) {
      visit(encode(t, bit), false, 0);
    }
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (t.symbol >= allowed.size() || !allowed.Test(t.symbol)) continue;
      visit(encode(t.to, bit || t.symbol == letter), true, t.symbol);
    }
  }
  if (found == UINT32_MAX) return std::nullopt;
  std::vector<strre::Symbol> word;
  for (uint32_t node = found; parent[node] != -1;
       node = static_cast<uint32_t>(parent[node])) {
    if (via_letter[node]) word.push_back(via[node]);
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::vector<std::optional<Hedge>> StateWitnesses(const Nha& nha) {
  std::vector<std::optional<Hedge>> witness(nha.num_states());
  Bitset have(nha.num_states());
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q : states) {
      if (have.Test(q)) continue;
      Hedge h;
      h.Append(kNullNode, hedge::Label::Variable(x));
      witness[q] = std::move(h);
      have.Set(q);
    }
  }
  for (const auto& [z, states] : nha.subst_map()) {
    for (HState q : states) {
      if (have.Test(q)) continue;
      Hedge h;
      h.Append(kNullNode, hedge::Label::Subst(z));
      witness[q] = std::move(h);
      have.Set(q);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : nha.rules()) {
      if (have.Test(rule.target)) continue;
      std::optional<std::vector<strre::Symbol>> word =
          ShortestWordOverAlphabet(rule.content, have);
      if (!word.has_value()) continue;
      Hedge h;
      NodeId root = h.Append(kNullNode, hedge::Label::Symbol(rule.symbol));
      for (strre::Symbol q : *word) {
        h.AppendHedgeCopy(root, *witness[q]);
      }
      witness[rule.target] = std::move(h);
      have.Set(rule.target);
      changed = true;
    }
  }
  return witness;
}

std::optional<Hedge> WitnessHedge(const Nha& nha) {
  std::vector<std::optional<Hedge>> witness = StateWitnesses(nha);
  Bitset have(nha.num_states());
  for (HState q = 0; q < nha.num_states(); ++q) {
    if (witness[q].has_value()) have.Set(q);
  }
  std::optional<std::vector<strre::Symbol>> final_word =
      ShortestWordOverAlphabet(nha.final_nfa(), have);
  if (!final_word.has_value()) return std::nullopt;
  Hedge out;
  for (strre::Symbol q : *final_word) {
    out.AppendHedgeCopy(kNullNode, *witness[q]);
  }
  return out;
}

}  // namespace hedgeq::automata
