#ifndef HEDGEQ_AUTOMATA_DETERMINIZE_H_
#define HEDGEQ_AUTOMATA_DETERMINIZE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "automata/dha.h"
#include "automata/nha.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::automata {

/// Result of determinizing an NHA: the DHA plus, for every DHA state, the
/// subset of NHA states it denotes. The sink is always state 0 (the empty
/// subset).
struct Determinized {
  Dha dha;
  std::vector<Bitset> subsets;
};

/// Certificate of one subset construction (translation validation): the
/// intermediate sets the construction interned, enough for an independent
/// checker (verify::CheckDeterminize) to re-derive every transition of the
/// output without trusting this file's code. Horizontal sets are over the
/// combined content NFA (rule contents concatenated in rule order, so state
/// offsets are recomputable from the input alone); final sets are over the
/// final NFA's states, one per state of the lifted final DFA.
struct DeterminizeWitness {
  std::vector<Bitset> h_sets;
  std::vector<Bitset> final_sets;
  /// Optional per-step digest chain over the interned sets, one link per
  /// set in section order — the Determinized subsets first, then h_sets,
  /// then final_sets — each link a util/digest DigestChainLink of the
  /// previous link (empty for the first) and the set. Lets
  /// verify::CheckCertificateLight (HQV016) detect tampering in O(1) per
  /// step; empty means "no chain recorded" and light checking falls back
  /// to the full checker.
  std::vector<std::string> chain;
};

/// Inline certification hook (HEDGEQ_CERTIFY): when installed, every
/// successful Determinize validates its own witness before returning and
/// fails with kInternal when the checker rejects it. Installed by
/// hedgeq_inline_certify (src/verify/inline_certify.cc); the pointer lives
/// here so automata does not depend on the checker.
using DeterminizeValidationHook = Status (*)(const Nha&, const Determinized&,
                                             const DeterminizeWitness&);
void SetDeterminizeValidationHook(DeterminizeValidationHook hook);
DeterminizeValidationHook GetDeterminizeValidationHook();

/// Pluggable cross-process cache for subset constructions, consulted by
/// every Determinize call while installed (src/cache/ provides the
/// persistent, certificate-checked implementation; the pointer lives here,
/// like the validation hook above, so automata does not depend on it).
///
/// Contract — the cache may only ever make Determinize faster, never wrong:
///  - Lookup must return true only for an entry it has *re-validated* for
///    exactly `input` (hedgeq's implementation runs the PR 3 certificate
///    checker and compares the stored input automaton byte-for-byte);
///    anything questionable is a miss.
///  - Store must be fire-and-forget: failures are swallowed (counted, never
///    propagated), so callers cannot be broken by a full or read-only disk.
/// Both are called with the same thread that called Determinize.
class DeterminizeCache {
 public:
  virtual ~DeterminizeCache() = default;

  /// On hit fills `out` (and `witness`, when non-null) and returns true.
  virtual bool Lookup(const Nha& input, Determinized* out,
                      DeterminizeWitness* witness) = 0;

  /// Offers a freshly constructed result for persistence.
  virtual void Store(const Nha& input, const Determinized& out,
                     const DeterminizeWitness& witness) = 0;

  /// Scoped variants used by pipelines that can key an entry by something
  /// cheaper to render than the embedded automaton (e.g. the source PHR
  /// text + vocabulary in query/phr_compile). `key_material` is an opaque
  /// caller-stable byte string; `input` is still passed so implementations
  /// can keep their validation ladder (hedgeq's cache byte-compares the
  /// stored input automaton regardless of how the entry was keyed).
  /// Defaults fall back to the input-keyed entry points, which is always
  /// correct, merely unscoped.
  virtual bool LookupScoped(std::string_view key_material, const Nha& input,
                            Determinized* out, DeterminizeWitness* witness) {
    (void)key_material;
    return Lookup(input, out, witness);
  }
  virtual void StoreScoped(std::string_view key_material, const Nha& input,
                           const Determinized& out,
                           const DeterminizeWitness& witness) {
    (void)key_material;
    Store(input, out, witness);
  }
};

/// Installs `cache` (not owned, null to uninstall) for every subsequent
/// Determinize in the process. On a hit the construction — and its
/// automata.determinize span — is skipped entirely; on a miss the result is
/// offered back through Store (forcing witness recording for that call).
void SetDeterminizeCache(DeterminizeCache* cache);
DeterminizeCache* GetDeterminizeCache();

/// Theorem 1: subset construction from a non-deterministic to a
/// deterministic hedge automaton with L(dha) = L(nha). Determinization is
/// worst-case exponential (the paper conjectures it is "usually efficient";
/// experiment E3 measures both sides), so the construction charges every
/// interned subset, horizontal state and transition against the budget and
/// fails with kResourceExhausted — reporting the count reached — when a cap
/// is hit. Callers that must not fail fall back to automata/lazy_dha.h.
Result<Determinized> Determinize(const Nha& nha, const ExecBudget& budget = {});

/// As above, but charging an existing scope so several pipeline stages share
/// one cumulative budget (e.g. the Theorem 4 compile in query/phr_compile).
Result<Determinized> Determinize(const Nha& nha, BudgetScope& scope);

/// As above, additionally recording the certificate witness into `witness`
/// (ignored when null). Recording is cheap — the sets already exist inside
/// the construction; they are moved out instead of discarded.
Result<Determinized> Determinize(const Nha& nha, BudgetScope& scope,
                                 DeterminizeWitness* witness);

/// Lifts a regular language over NHA states (an NFA with letters in Q_nha)
/// to a complete DFA over DHA states (letters are subset ids): the lifted
/// DFA accepts a word S1...Sk of subsets iff some q1 in S1, ..., qk in Sk
/// with q1...qk in L(lang). This is how final languages and the Theorem 4
/// per-triplet languages F_i1/F_i2 ride on one shared determinization.
/// The bounded form charges the DFA subset construction against `scope`.
Result<strre::Dfa> LiftToSubsetsBounded(const strre::Nfa& lang,
                                        std::span<const Bitset> subsets,
                                        BudgetScope& scope);

/// As above, also reporting the set of `lang` NFA states each lifted DFA
/// state denotes (the final-set witness; ignored when null).
Result<strre::Dfa> LiftToSubsetsBounded(const strre::Nfa& lang,
                                        std::span<const Bitset> subsets,
                                        BudgetScope& scope,
                                        std::vector<Bitset>* state_sets);

/// Unbounded convenience wrapper (cannot fail).
strre::Dfa LiftToSubsets(const strre::Nfa& lang,
                         std::span<const Bitset> subsets);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_DETERMINIZE_H_
