#ifndef HEDGEQ_AUTOMATA_DETERMINIZE_H_
#define HEDGEQ_AUTOMATA_DETERMINIZE_H_

#include <span>
#include <vector>

#include "automata/dha.h"
#include "automata/nha.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::automata {

/// Result of determinizing an NHA: the DHA plus, for every DHA state, the
/// subset of NHA states it denotes. The sink is always state 0 (the empty
/// subset).
struct Determinized {
  Dha dha;
  std::vector<Bitset> subsets;
};

/// Theorem 1: subset construction from a non-deterministic to a
/// deterministic hedge automaton with L(dha) = L(nha). Determinization is
/// worst-case exponential (the paper conjectures it is "usually efficient";
/// experiment E3 measures both sides), so the construction charges every
/// interned subset, horizontal state and transition against the budget and
/// fails with kResourceExhausted — reporting the count reached — when a cap
/// is hit. Callers that must not fail fall back to automata/lazy_dha.h.
Result<Determinized> Determinize(const Nha& nha, const ExecBudget& budget = {});

/// As above, but charging an existing scope so several pipeline stages share
/// one cumulative budget (e.g. the Theorem 4 compile in query/phr_compile).
Result<Determinized> Determinize(const Nha& nha, BudgetScope& scope);

/// Lifts a regular language over NHA states (an NFA with letters in Q_nha)
/// to a complete DFA over DHA states (letters are subset ids): the lifted
/// DFA accepts a word S1...Sk of subsets iff some q1 in S1, ..., qk in Sk
/// with q1...qk in L(lang). This is how final languages and the Theorem 4
/// per-triplet languages F_i1/F_i2 ride on one shared determinization.
/// The bounded form charges the DFA subset construction against `scope`.
Result<strre::Dfa> LiftToSubsetsBounded(const strre::Nfa& lang,
                                        std::span<const Bitset> subsets,
                                        BudgetScope& scope);

/// Unbounded convenience wrapper (cannot fail).
strre::Dfa LiftToSubsets(const strre::Nfa& lang,
                         std::span<const Bitset> subsets);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_DETERMINIZE_H_
