#include "automata/analysis.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::automata {

namespace {
std::atomic<TrimValidationHook> g_trim_hook{nullptr};
std::atomic<MinimizeValidationHook> g_minimize_hook{nullptr};
}  // namespace

void SetTrimValidationHook(TrimValidationHook hook) {
  g_trim_hook.store(hook, std::memory_order_relaxed);
}

TrimValidationHook GetTrimValidationHook() {
  return g_trim_hook.load(std::memory_order_relaxed);
}

void SetMinimizeValidationHook(MinimizeValidationHook hook) {
  g_minimize_hook.store(hook, std::memory_order_relaxed);
}

MinimizeValidationHook GetMinimizeValidationHook() {
  return g_minimize_hook.load(std::memory_order_relaxed);
}

using strre::Nfa;
using strre::StateId;

namespace {

// Letters appearing on some accepting path of `nfa` restricted to letters
// in `allowed`.
Bitset UsableLetters(const Nfa& nfa, const Bitset& allowed,
                     size_t num_letters) {
  Bitset usable(num_letters);
  if (nfa.num_states() == 0 || nfa.start() == strre::kNoState) return usable;
  auto letter_ok = [&](strre::Symbol p) {
    return p < allowed.size() && allowed.Test(p);
  };
  Bitset fwd(nfa.num_states());
  std::deque<StateId> queue;
  fwd.Set(nfa.start());
  queue.push_back(nfa.start());
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol) && !fwd.Test(t.to)) {
        fwd.Set(t.to);
        queue.push_back(t.to);
      }
    }
    for (StateId t : nfa.EpsilonsFrom(s)) {
      if (!fwd.Test(t)) {
        fwd.Set(t);
        queue.push_back(t);
      }
    }
  }
  std::vector<std::vector<StateId>> rev(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol)) rev[t.to].push_back(s);
    }
    for (StateId t : nfa.EpsilonsFrom(s)) rev[t].push_back(s);
  }
  Bitset bwd(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsAccepting(s)) {
      bwd.Set(s);
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    StateId s = queue.front();
    queue.pop_front();
    for (StateId t : rev[s]) {
      if (!bwd.Test(t)) {
        bwd.Set(t);
        queue.push_back(t);
      }
    }
  }
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (!fwd.Test(s)) continue;
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      if (letter_ok(t.symbol) && bwd.Test(t.to) && t.symbol < num_letters) {
        usable.Set(t.symbol);
      }
    }
  }
  return usable;
}

// Keeps only transitions on allowed letters, renaming letters via `rename`
// (kNoState-valued renames drop the transition).
Nfa FilterAndRename(const Nfa& in, const std::vector<HState>& rename) {
  Nfa out;
  for (StateId s = 0; s < in.num_states(); ++s) {
    out.AddState(in.IsAccepting(s));
  }
  if (in.start() != strre::kNoState) out.SetStart(in.start());
  for (StateId s = 0; s < in.num_states(); ++s) {
    for (const Nfa::Transition& t : in.TransitionsFrom(s)) {
      if (t.symbol < rename.size() && rename[t.symbol] != strre::kNoState) {
        out.AddTransition(s, rename[t.symbol], t.to);
      }
    }
    for (StateId t : in.EpsilonsFrom(s)) out.AddEpsilon(s, t);
  }
  return out;
}

// Product of two content NFAs reading pair letters p1 * n + p2, where n is
// the state count of the underlying NHA.
Nfa PairContentNfa(const Nfa& a, const Nfa& b, size_t n) {
  Nfa out;
  const size_t nb = b.num_states();
  for (size_t i = 0; i < a.num_states() * nb; ++i) out.AddState(false);
  if (a.num_states() == 0 || b.num_states() == 0 ||
      a.start() == strre::kNoState || b.start() == strre::kNoState) {
    return out;
  }
  auto pid = [nb](StateId sa, StateId sb) {
    return static_cast<StateId>(sa * nb + sb);
  };
  out.SetStart(pid(a.start(), b.start()));
  for (StateId sa = 0; sa < a.num_states(); ++sa) {
    for (StateId sb = 0; sb < b.num_states(); ++sb) {
      if (a.IsAccepting(sa) && b.IsAccepting(sb)) {
        out.SetAccepting(pid(sa, sb), true);
      }
      for (StateId ta : a.EpsilonsFrom(sa)) {
        out.AddEpsilon(pid(sa, sb), pid(ta, sb));
      }
      for (StateId tb : b.EpsilonsFrom(sb)) {
        out.AddEpsilon(pid(sa, sb), pid(sa, tb));
      }
      for (const Nfa::Transition& ta : a.TransitionsFrom(sa)) {
        for (const Nfa::Transition& tb : b.TransitionsFrom(sb)) {
          out.AddTransition(pid(sa, sb),
                            static_cast<strre::Symbol>(ta.symbol * n +
                                                       tb.symbol),
                            pid(ta.to, tb.to));
        }
      }
    }
  }
  return out;
}

}  // namespace

Nha PruneNha(const Nha& nha, std::vector<HState>* mapping,
             TrimWitness* witness) {
  HEDGEQ_OBS_SPAN(span, obs::spans::kTrim);
  const size_t n = nha.num_states();
  Bitset derivable = ReachableStates(nha);

  // Co-reachability: seeded from the final language, propagated through
  // contents of co-reachable targets.
  Bitset co = UsableLetters(nha.final_nfa(), derivable, n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Nha::Rule& rule : nha.rules()) {
      if (!co.Test(rule.target)) continue;
      Bitset usable = UsableLetters(rule.content, derivable, n);
      Bitset before = co;
      co |= usable;
      if (!(co == before)) changed = true;
    }
  }
  Bitset useful = derivable;
  useful &= co;

  // Dense renumbering of the surviving states.
  std::vector<HState> rename(n, strre::kNoState);
  Nha out;
  for (HState q = 0; q < n; ++q) {
    if (useful.Test(q)) rename[q] = out.AddState();
  }
  for (const Nha::Rule& rule : nha.rules()) {
    if (rule.target >= n || !useful.Test(rule.target)) continue;
    out.AddRule(rule.symbol, FilterAndRename(rule.content, rename),
                rename[rule.target]);
  }
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q : states) {
      if (useful.Test(q)) out.AddVariableState(x, rename[q]);
    }
  }
  for (const auto& [z, states] : nha.subst_map()) {
    for (HState q : states) {
      if (useful.Test(q)) out.AddSubstState(z, rename[q]);
    }
  }
  out.SetFinal(FilterAndRename(nha.final_nfa(), rename));
  if (mapping != nullptr) *mapping = rename;
  const bool want_witness =
      witness != nullptr || GetTrimValidationHook() != nullptr;
  if (want_witness) {
    TrimWitness local{derivable, useful, rename};
    if (TrimValidationHook hook = GetTrimValidationHook()) {
      Status verdict = hook(nha, out, local);
      HEDGEQ_CHECK_MSG(verdict.ok(), verdict.ToString().c_str());
    }
    if (witness != nullptr) *witness = std::move(local);
  }
  if (obs::Enabled()) {
    const size_t removed = n - out.num_states();
    HEDGEQ_OBS_COUNT(obs::metrics::kTrimCalls, 1);
    HEDGEQ_OBS_COUNT(obs::metrics::kTrimStatesRemoved, removed);
    span.AddArg("states_in", n);
    span.AddArg("states_removed", removed);
  }
  return out;
}

bool IsAmbiguous(const Nha& nha) {
  const size_t n = nha.num_states();
  if (n == 0) return false;
  // Flagged self-product: state (q1, q2, d) with d = "the two labelings
  // differ at or below this node".
  Nha product;
  product.AddStates(n * n * 2);
  auto encode = [n](HState q1, HState q2, bool d) {
    return static_cast<HState>((q1 * n + q2) * 2 + (d ? 1 : 0));
  };

  // NFA over the full flagged-pair alphabet accepting words with at least
  // one flagged letter.
  const size_t num_letters = n * n * 2;
  Nfa flagged_once;
  {
    StateId s0 = flagged_once.AddState(false);
    StateId s1 = flagged_once.AddState(true);
    for (strre::Symbol letter = 0; letter < num_letters; ++letter) {
      flagged_once.AddTransition(s0, letter, s0);
      flagged_once.AddTransition(s1, letter, s1);
      if (letter % 2 == 1) flagged_once.AddTransition(s0, letter, s1);
    }
  }

  auto expand_bits = [](strre::Symbol pair) {
    return std::vector<strre::Symbol>{2 * pair, 2 * pair + 1};
  };
  auto only_unflagged = [](strre::Symbol pair) {
    return std::vector<strre::Symbol>{2 * pair};
  };

  for (const Nha::Rule& r1 : nha.rules()) {
    for (const Nha::Rule& r2 : nha.rules()) {
      if (r1.symbol != r2.symbol) continue;
      Nfa base = PairContentNfa(r1.content, r2.content, n);
      if (r1.target != r2.target) {
        // The labelings differ right here: children may be anything.
        product.AddRule(r1.symbol, strre::SubstituteSets(base, expand_bits),
                        encode(r1.target, r2.target, true));
      } else {
        // Same label here: differ iff some child differs.
        product.AddRule(r1.symbol, strre::SubstituteSets(base, only_unflagged),
                        encode(r1.target, r2.target, false));
        Nfa any_bits = strre::SubstituteSets(base, expand_bits);
        product.AddRule(r1.symbol,
                        strre::IntersectNfa(any_bits, flagged_once),
                        encode(r1.target, r2.target, true));
      }
    }
  }
  for (const auto& [x, states] : nha.var_map()) {
    for (HState q1 : states) {
      for (HState q2 : states) {
        product.AddVariableState(x, encode(q1, q2, q1 != q2));
      }
    }
  }
  for (const auto& [z, states] : nha.subst_map()) {
    for (HState q1 : states) {
      for (HState q2 : states) {
        product.AddSubstState(z, encode(q1, q2, q1 != q2));
      }
    }
  }

  // Accept: both projections accept and some top-level letter is flagged.
  Nfa final_pairs = PairContentNfa(nha.final_nfa(), nha.final_nfa(), n);
  product.SetFinal(strre::IntersectNfa(
      strre::SubstituteSets(final_pairs, expand_bits), flagged_once));

  return !IsEmptyNha(product);
}

Dha MinimizeDha(const Dha& dha, MinimizeWitness* witness) {
  const HState nq = dha.num_states();
  const HhState nh = dha.num_h_states();

  // Minimal complete final DFA: two letters are final-indistinguishable iff
  // they induce the same transition from every minimal state.
  std::vector<strre::Symbol> alphabet(nq);
  for (HState q = 0; q < nq; ++q) alphabet[q] = q;
  strre::Dfa fmin =
      strre::Complete(strre::Minimize(dha.final_dfa(), alphabet), alphabet);

  // Initial state partition: final-DFA letter signatures (condition A).
  std::vector<uint32_t> qblock(nq, 0);
  {
    std::map<std::vector<StateId>, uint32_t> ids;
    for (HState q = 0; q < nq; ++q) {
      std::vector<StateId> sig;
      sig.reserve(fmin.num_states());
      for (StateId s = 0; s < fmin.num_states(); ++s) {
        sig.push_back(fmin.Next(s, q));
      }
      auto [it, inserted] =
          ids.try_emplace(std::move(sig), static_cast<uint32_t>(ids.size()));
      qblock[q] = it->second;
    }
  }
  std::vector<uint32_t> hblock(nh, 0);

  // Mutual Moore refinement: H-blocks must agree on assignments (up to the
  // state partition) and successors (up to the H partition); state blocks
  // must agree on how every horizontal state reads them.
  const auto& assign_map = dha.assign_map();
  bool changed = true;
  while (changed) {
    changed = false;
    {
      std::map<std::vector<uint32_t>, uint32_t> ids;
      std::vector<uint32_t> next(nh);
      for (HhState h = 0; h < nh; ++h) {
        std::vector<uint32_t> sig;
        sig.reserve(assign_map.size() + nq + 1);
        sig.push_back(hblock[h]);
        for (const auto& [symbol, row] : assign_map) {
          (void)symbol;  // map iteration order is stable per run
          sig.push_back(qblock[row[h]]);
        }
        for (HState q = 0; q < nq; ++q) {
          sig.push_back(hblock[dha.HNext(h, q)]);
        }
        auto [it, inserted] = ids.try_emplace(
            std::move(sig), static_cast<uint32_t>(ids.size()));
        next[h] = it->second;
      }
      if (next != hblock) {
        changed = true;
        hblock = std::move(next);
      }
    }
    {
      std::map<std::vector<uint32_t>, uint32_t> ids;
      std::vector<uint32_t> next(nq);
      for (HState q = 0; q < nq; ++q) {
        std::vector<uint32_t> sig;
        sig.reserve(nh + 1);
        sig.push_back(qblock[q]);
        for (HhState h = 0; h < nh; ++h) {
          sig.push_back(hblock[dha.HNext(h, q)]);
        }
        auto [it, inserted] = ids.try_emplace(
            std::move(sig), static_cast<uint32_t>(ids.size()));
        next[q] = it->second;
      }
      if (next != qblock) {
        changed = true;
        qblock = std::move(next);
      }
    }
  }

  uint32_t num_qblocks = *std::max_element(qblock.begin(), qblock.end()) + 1;
  if (!failpoint::Check("minimize/merge-nonbisimilar").ok() &&
      num_qblocks >= 2) {
    // Seeded bug: collapse the last block into block 0 even though the
    // refinement proved them distinguishable. The quotient below then
    // over-merges; CheckMinimize must reject the witness with HQV010.
    for (HState q = 0; q < nq; ++q) {
      if (qblock[q] == num_qblocks - 1) qblock[q] = 0;
    }
    --num_qblocks;
  }
  const uint32_t num_hblocks =
      *std::max_element(hblock.begin(), hblock.end()) + 1;

  // Representatives.
  std::vector<HState> qrep(num_qblocks, 0);
  for (HState q = nq; q-- > 0;) qrep[qblock[q]] = q;
  std::vector<HhState> hrep(num_hblocks, 0);
  for (HhState h = nh; h-- > 0;) hrep[hblock[h]] = h;

  Dha out(num_qblocks, num_hblocks, hblock[dha.h_start()],
          qblock[dha.sink()]);
  for (uint32_t hb = 0; hb < num_hblocks; ++hb) {
    for (uint32_t qb = 0; qb < num_qblocks; ++qb) {
      out.SetHTransition(hb, qb, hblock[dha.HNext(hrep[hb], qrep[qb])]);
    }
  }
  for (const auto& [symbol, row] : assign_map) {
    for (uint32_t hb = 0; hb < num_hblocks; ++hb) {
      out.SetAssign(symbol, hb, qblock[row[hrep[hb]]]);
    }
  }
  for (const auto& [x, q] : dha.var_map()) {
    out.SetVariableState(x, qblock[q]);
  }
  for (const auto& [z, q] : dha.subst_map()) {
    out.SetSubstState(z, qblock[q]);
  }
  // Final: fmin with letters renamed to blocks (well-defined by condition
  // A: letters in one block share all fmin transitions).
  strre::Dfa final_out;
  for (StateId s = 0; s < fmin.num_states(); ++s) {
    final_out.AddState(fmin.IsAccepting(s));
  }
  final_out.SetStart(fmin.start());
  for (StateId s = 0; s < fmin.num_states(); ++s) {
    for (uint32_t qb = 0; qb < num_qblocks; ++qb) {
      StateId t = fmin.Next(s, qrep[qb]);
      if (t != strre::kNoState) final_out.SetTransition(s, qb, t);
    }
  }
  out.SetFinalDfa(std::move(final_out));
  const bool want_witness =
      witness != nullptr || GetMinimizeValidationHook() != nullptr;
  if (want_witness) {
    MinimizeWitness local{qblock, hblock};
    if (MinimizeValidationHook hook = GetMinimizeValidationHook()) {
      Status verdict = hook(dha, out, local);
      HEDGEQ_CHECK_MSG(verdict.ok(), verdict.ToString().c_str());
    }
    if (witness != nullptr) *witness = std::move(local);
  }
  return out;
}

}  // namespace hedgeq::automata
