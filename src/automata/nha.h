#ifndef HEDGEQ_AUTOMATA_NHA_H_
#define HEDGEQ_AUTOMATA_NHA_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hedge/hedge.h"
#include "strre/automaton.h"
#include "util/bitset.h"

namespace hedgeq::automata {

/// Hedge automaton state id (the set Q of Definitions 3/6).
using HState = uint32_t;

/// Non-deterministic hedge automaton (Definition 6):
/// M = (Sigma, X, Q, iota, alpha, F) where
///  - iota maps variables (and, per Lemma 1, substitution symbols) to sets
///    of states,
///  - alpha is given rule-wise: a rule (symbol a, content C, target q) means
///    alpha(a, w) contains q for every state word w in C; C (the paper's
///    alpha^{-1}(a, q)) is a regular language over Q represented as an NFA,
///  - F is a regular set over Q represented as an NFA.
class Nha {
 public:
  struct Rule {
    hedge::SymbolId symbol;
    HState target;
    strre::Nfa content;  // language over HState letters
  };

  Nha() = default;

  /// Adds a fresh state and returns its id.
  HState AddState();
  /// Adds n fresh states, returning the first id.
  HState AddStates(size_t n);

  /// Declares alpha^{-1}(symbol, target) ⊇ L(content).
  void AddRule(hedge::SymbolId symbol, strre::Nfa content, HState target);

  /// Declares q ∈ iota(x).
  void AddVariableState(hedge::VarId x, HState q);
  /// Declares q ∈ iota(z) for a substitution symbol (Lemma 1 allows
  /// substitution symbols as variables of hedge automata).
  void AddSubstState(hedge::SubstId z, HState q);

  /// Sets the final state sequence set F.
  void SetFinal(strre::Nfa final_nfa) { final_ = std::move(final_nfa); }

  /// Replaces the content language of rule `index` (used by the Lemma 1
  /// compiler to splice final languages into substitution-symbol slots).
  void SetRuleContent(size_t index, strre::Nfa content);

  /// Drops iota(z) entirely (Lemma 1 case 9 removes z from X2).
  void ClearSubstState(hedge::SubstId z) { subst_states_.erase(z); }

  /// Removes one q from iota(z) (case 9 when only part of the expression is
  /// embedded).
  void RemoveSubstState(hedge::SubstId z, HState q);

  size_t num_states() const { return num_states_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const strre::Nfa& final_nfa() const { return final_; }

  const std::vector<HState>& VariableStates(hedge::VarId x) const;
  const std::vector<HState>& SubstStates(hedge::SubstId z) const;
  const std::unordered_map<hedge::VarId, std::vector<HState>>& var_map() const {
    return var_states_;
  }
  const std::unordered_map<hedge::SubstId, std::vector<HState>>& subst_map()
      const {
    return subst_states_;
  }

  /// Bottom-up subset simulation (Definition 7): for every node of `h`, the
  /// set of states some computation assigns to it. Indexed by NodeId.
  std::vector<Bitset> ComputeStateSets(const hedge::Hedge& h) const;

  /// Definition 8 acceptance, by direct simulation (no determinization).
  bool Accepts(const hedge::Hedge& h) const;

 private:
  size_t num_states_ = 0;
  std::vector<Rule> rules_;
  std::unordered_map<hedge::VarId, std::vector<HState>> var_states_;
  std::unordered_map<hedge::SubstId, std::vector<HState>> subst_states_;
  strre::Nfa final_;
};

/// Copies all states/rules/variable maps of `src` into `dst`, returning the
/// state-id offset. Final languages are not merged (callers combine them).
HState CopyNhaInto(const Nha& src, Nha& dst);

/// Intersection automaton: accepts L(a) ∩ L(b). States are pairs encoded as
/// qa * b.num_states() + qb.
Nha IntersectNha(const Nha& a, const Nha& b);

/// Union automaton: accepts L(a) ∪ L(b) (disjoint union of parts).
Nha UnionNha(const Nha& a, const Nha& b);

/// True when L(nha) contains no hedge over the vocabulary implied by its
/// variable map and rules (bottom-up reachability fixpoint).
bool IsEmptyNha(const Nha& nha);

/// The set of states derivable by some hedge (bottom-up reachable states).
Bitset ReachableStates(const Nha& nha);

/// A (small, not necessarily minimal) hedge accepted by the automaton, or
/// nullopt when the language is empty. Useful for exhibiting sample members
/// of inferred output schemas.
std::optional<hedge::Hedge> WitnessHedge(const Nha& nha);

/// For every state, a (small) single-tree/leaf hedge witnessing that the
/// state is derivable (nullopt for underivable states). The building block
/// of WitnessHedge and of example-document synthesis.
std::vector<std::optional<hedge::Hedge>> StateWitnesses(const Nha& nha);

/// A shortest word accepted by `nfa` using only letters in `allowed`;
/// nullopt when none exists.
std::optional<std::vector<strre::Symbol>> ShortestWordOverAlphabet(
    const strre::Nfa& nfa, const Bitset& allowed);

/// A shortest accepted word over `allowed` that contains `letter` at least
/// once; nullopt when none exists.
std::optional<std::vector<strre::Symbol>> ShortestWordContaining(
    const strre::Nfa& nfa, const Bitset& allowed, strre::Symbol letter);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_NHA_H_
