#ifndef HEDGEQ_AUTOMATA_ANALYSIS_H_
#define HEDGEQ_AUTOMATA_ANALYSIS_H_

#include "automata/dha.h"
#include "automata/nha.h"

namespace hedgeq::automata {

/// Removes states that no hedge derives (not bottom-up reachable) or that
/// no accepting computation uses (not co-reachable), compacting the state
/// space and dropping dead rules. Preserves the language. Addresses the
/// paper's Section 9 question of porting path-expression optimization
/// techniques: pruning is the basic enabling pass. When `mapping` is
/// non-null it receives old-state -> new-state (strre::kNoState for
/// dropped states), so per-state annotations (marks) can follow.
Nha PruneNha(const Nha& nha, std::vector<HState>* mapping = nullptr);

/// Is some hedge accepted along two distinct computations (two different
/// state labelings)? Section 9 proposes adding variables to *unambiguous*
/// hedge regular expressions; this is the decision procedure, via a
/// flagged self-product: pair states (q1, q2, differ) where `differ`
/// records a label mismatch at or below the node, accepting iff both
/// projections accept and some top-level pair is flagged.
bool IsAmbiguous(const Nha& nha);

/// Minimizes a deterministic hedge automaton by mutual partition
/// refinement: two automaton states are merged when no context (final
/// language, or any content-model position of any rule) distinguishes
/// them, and two horizontal states are merged when all their assignments
/// and successors agree up to the state partition. Language-preserving;
/// typically shrinks subset-construction output substantially.
Dha MinimizeDha(const Dha& dha);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_ANALYSIS_H_
