#ifndef HEDGEQ_AUTOMATA_ANALYSIS_H_
#define HEDGEQ_AUTOMATA_ANALYSIS_H_

#include "automata/dha.h"
#include "automata/nha.h"

namespace hedgeq::automata {

/// Certificate of one trim (translation validation): the reachability and
/// co-reachability derivations PruneNha computed plus the state renaming,
/// enough for an independent checker (verify::CheckTrim) to re-derive both
/// fixpoints and confirm the output automaton is exactly the projection of
/// the input onto the useful states.
struct TrimWitness {
  Bitset derivable;             // bottom-up derivable states of the input
  Bitset useful;                // derivable AND co-reachable (survivors)
  std::vector<HState> mapping;  // old -> new; strre::kNoState = dropped
};

/// Inline certification hook (HEDGEQ_CERTIFY): when installed, every
/// PruneNha validates its own witness; rejection is a hard check failure
/// (PruneNha cannot return a Status). Installed by hedgeq_inline_certify.
using TrimValidationHook = Status (*)(const Nha& input, const Nha& output,
                                      const TrimWitness&);
void SetTrimValidationHook(TrimValidationHook hook);
TrimValidationHook GetTrimValidationHook();

/// Removes states that no hedge derives (not bottom-up reachable) or that
/// no accepting computation uses (not co-reachable), compacting the state
/// space and dropping dead rules. Preserves the language. Addresses the
/// paper's Section 9 question of porting path-expression optimization
/// techniques: pruning is the basic enabling pass. When `mapping` is
/// non-null it receives old-state -> new-state (strre::kNoState for
/// dropped states), so per-state annotations (marks) can follow. When
/// `witness` is non-null it receives the trim certificate.
Nha PruneNha(const Nha& nha, std::vector<HState>* mapping = nullptr,
             TrimWitness* witness = nullptr);

/// Is some hedge accepted along two distinct computations (two different
/// state labelings)? Section 9 proposes adding variables to *unambiguous*
/// hedge regular expressions; this is the decision procedure, via a
/// flagged self-product: pair states (q1, q2, differ) where `differ`
/// records a label mismatch at or below the node, accepting iff both
/// projections accept and some top-level pair is flagged.
bool IsAmbiguous(const Nha& nha);

/// Certificate of one minimization (translation validation): the converged
/// block partition over automaton states and horizontal states. An
/// independent checker (verify::CheckMinimize) validates that the partition
/// is a congruence (all transition/assignment/variable maps commute through
/// the block maps) and that the quotient preserves the final language —
/// without re-running the refinement.
struct MinimizeWitness {
  std::vector<uint32_t> qblock;  // input state -> output state (block id)
  std::vector<uint32_t> hblock;  // input h-state -> output h-state (block id)
};

/// Inline certification hook (HEDGEQ_CERTIFY): when installed, every
/// MinimizeDha validates its own witness; rejection is a hard check
/// failure (MinimizeDha cannot return a Status). Installed by
/// hedgeq_inline_certify.
using MinimizeValidationHook = Status (*)(const Dha& input, const Dha& output,
                                          const MinimizeWitness&);
void SetMinimizeValidationHook(MinimizeValidationHook hook);
MinimizeValidationHook GetMinimizeValidationHook();

/// Minimizes a deterministic hedge automaton by mutual partition
/// refinement: two automaton states are merged when no context (final
/// language, or any content-model position of any rule) distinguishes
/// them, and two horizontal states are merged when all their assignments
/// and successors agree up to the state partition. Language-preserving;
/// typically shrinks subset-construction output substantially. When
/// `witness` is non-null it receives the minimization certificate.
/// Failpoint `minimize/merge-nonbisimilar` corrupts the converged partition
/// by merging two distinct blocks (a seeded bug CheckMinimize must catch).
Dha MinimizeDha(const Dha& dha, MinimizeWitness* witness = nullptr);

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_ANALYSIS_H_
