#include "automata/lazy_dha.h"

#include <utility>

#include "obs/catalogue.h"
#include "obs/obs.h"

namespace hedgeq::automata {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::LabelKind;
using hedge::NodeId;
using strre::Nfa;

LazyDha::LazyDha(Nha nha, LazyDhaOptions options)
    : nha_(std::move(nha)),
      options_(options),
      combined_(CombineContents(nha_)) {
  h_start_ = Bitset(combined_.nfa.num_states());
  for (strre::StateId s : combined_.starts) {
    if (s != strre::kNoState) h_start_.Set(s);
  }
  combined_.nfa.EpsilonClosure(h_start_);
  const size_t nq = nha_.num_states();
  for (const auto& [x, states] : nha_.var_map()) {
    Bitset b(nq);
    for (HState q : states) b.Set(q);
    var_subsets_.emplace(x, std::move(b));
  }
  for (const auto& [z, states] : nha_.subst_map()) {
    Bitset b(nq);
    for (HState q : states) b.Set(q);
    subst_subsets_.emplace(z, std::move(b));
  }
}

void LazyDha::NoteInsert(size_t bytes_added) const {
  ++stats_.states_materialized;
  ++stats_.cache_misses;
  (void)bytes_added;
  stats_.peak_cache_bytes = std::max(
      stats_.peak_cache_bytes, hnext_cache_.bytes + assign_cache_.bytes);
  HEDGEQ_OBS_COUNT(obs::metrics::kLazyStatesMaterialized, 1);
  HEDGEQ_OBS_COUNT(obs::metrics::kLazyCacheMisses, 1);
  HEDGEQ_OBS_GAUGE_MAX(obs::metrics::kLazyPeakCacheBytes,
                       stats_.peak_cache_bytes);
  // Evict LRU entries, from whichever cache is larger, until the joint
  // budget holds again.
  auto evict_one = [&](auto& cache) -> bool {
    if (cache.entries.empty()) return false;
    cache.bytes -= cache.entries.back().bytes;
    cache.index.erase(cache.entries.back().key);
    cache.entries.pop_back();
    ++stats_.cache_evictions;
    HEDGEQ_OBS_COUNT(obs::metrics::kLazyCacheEvictions, 1);
    return true;
  };
  while (hnext_cache_.bytes + assign_cache_.bytes >
         options_.max_cache_bytes) {
    bool evicted = hnext_cache_.bytes >= assign_cache_.bytes
                       ? evict_one(hnext_cache_)
                       : evict_one(assign_cache_);
    if (!evicted) {
      evicted = evict_one(hnext_cache_) || evict_one(assign_cache_);
    }
    if (!evicted) break;
  }
}

Bitset LazyDha::HNext(const Bitset& h, const Bitset& subset) const {
  HNextKey key{h, subset};
  if (const Bitset* cached = hnext_cache_.Find(key)) {
    ++stats_.cache_hits;
    HEDGEQ_OBS_COUNT(obs::metrics::kLazyCacheHits, 1);
    return *cached;
  }
  Bitset next(combined_.nfa.num_states());
  for (uint32_t cs : h.ToVector()) {
    for (const Nfa::Transition& t : combined_.nfa.TransitionsFrom(cs)) {
      if (t.symbol < subset.size() && subset.Test(t.symbol)) {
        next.Set(t.to);
      }
    }
  }
  combined_.nfa.EpsilonClosure(next);
  size_t bytes = key.h.ApproxBytes() + key.subset.ApproxBytes() +
                 2 * next.ApproxBytes() + 64;
  Bitset out = next;
  if (audit_ != nullptr) {
    audit_->push_back(LazyAuditEntry{false, 0, h, subset, out});
  }
  hnext_cache_.Insert(std::move(key), std::move(next), bytes);
  NoteInsert(bytes);
  return out;
}

Bitset LazyDha::Assign(hedge::SymbolId symbol, const Bitset& h) const {
  AssignKey key{symbol, h};
  if (const Bitset* cached = assign_cache_.Find(key)) {
    ++stats_.cache_hits;
    HEDGEQ_OBS_COUNT(obs::metrics::kLazyCacheHits, 1);
    return *cached;
  }
  Bitset targets(nha_.num_states());
  for (uint32_t cs : h.ToVector()) {
    for (uint32_t rule_index : combined_.accept_info[cs]) {
      const Nha::Rule& rule = nha_.rules()[rule_index];
      if (rule.symbol == symbol) targets.Set(rule.target);
    }
  }
  size_t bytes = key.h.ApproxBytes() + 2 * targets.ApproxBytes() + 64;
  Bitset out = targets;
  if (audit_ != nullptr) {
    audit_->push_back(
        LazyAuditEntry{true, symbol, h, Bitset(0), out});
  }
  assign_cache_.Insert(std::move(key), std::move(targets), bytes);
  NoteInsert(bytes);
  return out;
}

Bitset LazyDha::VariableSubset(hedge::VarId x) const {
  auto it = var_subsets_.find(x);
  return it == var_subsets_.end() ? Bitset(nha_.num_states()) : it->second;
}

Bitset LazyDha::SubstSubset(hedge::SubstId z) const {
  auto it = subst_subsets_.find(z);
  return it == subst_subsets_.end() ? Bitset(nha_.num_states()) : it->second;
}

LazyDha::FinalRun::FinalRun(const LazyDha& dha)
    : dha_(dha), current_(dha.nha_.final_nfa().num_states()) {
  const Nfa& final = dha_.nha_.final_nfa();
  if (final.num_states() > 0 && final.start() != strre::kNoState) {
    current_.Set(final.start());
    final.EpsilonClosure(current_);
  }
}

void LazyDha::FinalRun::Consume(const Bitset& subset) {
  const Nfa& final = dha_.nha_.final_nfa();
  Bitset next(final.num_states());
  for (uint32_t p : current_.ToVector()) {
    for (const Nfa::Transition& t : final.TransitionsFrom(p)) {
      if (t.symbol < subset.size() && subset.Test(t.symbol)) {
        next.Set(t.to);
      }
    }
  }
  final.EpsilonClosure(next);
  current_ = std::move(next);
}

bool LazyDha::FinalRun::Accepting() const {
  const Nfa& final = dha_.nha_.final_nfa();
  for (uint32_t p : current_.ToVector()) {
    if (final.IsAccepting(p)) return true;
  }
  return false;
}

std::vector<Bitset> LazyDha::Run(const Hedge& h) const {
  const size_t nq = nha_.num_states();
  std::vector<Bitset> sets(h.num_nodes(), Bitset(nq));
  // Children have larger arena ids than parents; reverse sweep is bottom-up.
  for (NodeId n = static_cast<NodeId>(h.num_nodes()); n-- > 0;) {
    const hedge::Label label = h.label(n);
    switch (label.kind) {
      case LabelKind::kVariable:
        sets[n] = VariableSubset(label.id);
        break;
      case LabelKind::kSubst:
        sets[n] = SubstSubset(label.id);
        break;
      case LabelKind::kEta:
        break;  // eta never carries automaton states (empty = sink)
      case LabelKind::kSymbol: {
        Bitset hs = h_start_;
        for (NodeId c = h.first_child(n); c != kNullNode;
             c = h.next_sibling(c)) {
          hs = HNext(hs, sets[c]);
        }
        sets[n] = Assign(label.id, hs);
        break;
      }
    }
  }
  return sets;
}

LazyDha::MarkedRun LazyDha::RunWithMarks(const Hedge& h) const {
  const size_t nq = nha_.num_states();
  MarkedRun out;
  out.states.assign(h.num_nodes(), Bitset(nq));
  out.marks.assign(h.num_nodes(), false);
  for (NodeId n = static_cast<NodeId>(h.num_nodes()); n-- > 0;) {
    const hedge::Label label = h.label(n);
    switch (label.kind) {
      case LabelKind::kVariable:
        out.states[n] = VariableSubset(label.id);
        break;
      case LabelKind::kSubst:
        out.states[n] = SubstSubset(label.id);
        break;
      case LabelKind::kEta:
        break;
      case LabelKind::kSymbol: {
        Bitset hs = h_start_;
        FinalRun f(*this);
        for (NodeId c = h.first_child(n); c != kNullNode;
             c = h.next_sibling(c)) {
          f.Consume(out.states[c]);
          hs = HNext(hs, out.states[c]);
        }
        out.states[n] = Assign(label.id, hs);
        out.marks[n] = f.Accepting();
        break;
      }
    }
  }
  return out;
}

bool LazyDha::Accepts(const Hedge& h) const {
  std::vector<Bitset> sets = Run(h);
  FinalRun f(*this);
  for (NodeId r : h.roots()) f.Consume(sets[r]);
  return f.Accepting();
}

}  // namespace hedgeq::automata
