#include "automata/serialize.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace hedgeq::automata {

using strre::Nfa;

namespace {

void WriteNfa(const Nfa& nfa, std::string& out) {
  out += StrCat("nfa ", nfa.num_states(), " ",
                nfa.start() == strre::kNoState
                    ? std::string("-")
                    : std::to_string(nfa.start()),
                "\n");
  std::string accepts = "accept";
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsAccepting(s)) accepts += StrCat(" ", s);
  }
  out += accepts + "\n";
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out += StrCat("t ", s, " ", t.symbol, " ", t.to, "\n");
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      out += StrCat("e ", s, " ", t, "\n");
    }
  }
  out += "end\n";
}

class LineReader {
 public:
  explicit LineReader(std::string_view text) : lines_(StrSplit(text, '\n')) {}

  bool Done() const { return index_ >= lines_.size(); }

  // Next non-empty line, split on spaces.
  Result<std::vector<std::string>> Next() {
    while (index_ < lines_.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines_[index_]);
      ++index_;
      if (stripped.empty() || stripped[0] == '#') continue;
      std::vector<std::string> fields;
      for (std::string& f : StrSplit(stripped, ' ')) {
        if (!f.empty()) fields.push_back(std::move(f));
      }
      return fields;
    }
    return Status::InvalidArgument("unexpected end of automaton text");
  }

  size_t line() const { return index_; }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

Result<uint32_t> ParseU32(const std::string& field) {
  uint32_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  return value;
}

Result<Nfa> ReadNfa(LineReader& reader) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 3 || (*header)[0] != "nfa") {
    return Status::InvalidArgument(
        StrCat("expected 'nfa <states> <start>' near line ", reader.line()));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  Nfa nfa;
  for (uint32_t s = 0; s < *count; ++s) nfa.AddState(false);
  if ((*header)[2] != "-") {
    Result<uint32_t> start = ParseU32((*header)[2]);
    if (!start.ok()) return start.status();
    if (*start >= *count) {
      return Status::InvalidArgument("nfa start out of range");
    }
    nfa.SetStart(*start);
  }

  Result<std::vector<std::string>> accepts = reader.Next();
  if (!accepts.ok()) return accepts.status();
  if (accepts->empty() || (*accepts)[0] != "accept") {
    return Status::InvalidArgument(
        StrCat("expected 'accept ...' near line ", reader.line()));
  }
  for (size_t i = 1; i < accepts->size(); ++i) {
    Result<uint32_t> s = ParseU32((*accepts)[i]);
    if (!s.ok()) return s.status();
    if (*s >= *count) return Status::InvalidArgument("accept out of range");
    nfa.SetAccepting(*s, true);
  }

  while (true) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    const std::string& tag = (*fields)[0];
    if (tag == "end") break;
    if (tag == "t" && fields->size() == 4) {
      Result<uint32_t> from = ParseU32((*fields)[1]);
      Result<uint32_t> letter = ParseU32((*fields)[2]);
      Result<uint32_t> to = ParseU32((*fields)[3]);
      if (!from.ok() || !letter.ok() || !to.ok()) {
        return Status::InvalidArgument("bad transition line");
      }
      if (*from >= *count || *to >= *count) {
        return Status::InvalidArgument("transition state out of range");
      }
      nfa.AddTransition(*from, *letter, *to);
    } else if (tag == "e" && fields->size() == 3) {
      Result<uint32_t> from = ParseU32((*fields)[1]);
      Result<uint32_t> to = ParseU32((*fields)[2]);
      if (!from.ok() || !to.ok()) {
        return Status::InvalidArgument("bad epsilon line");
      }
      if (*from >= *count || *to >= *count) {
        return Status::InvalidArgument("epsilon state out of range");
      }
      nfa.AddEpsilon(*from, *to);
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected line in nfa block near line ", reader.line()));
    }
  }
  return nfa;
}

}  // namespace

std::string SerializeNha(const Nha& nha, const hedge::Vocabulary& vocab) {
  std::string out = "nha 1\n";
  out += StrCat("states ", nha.num_states(), "\n");
  // var_map/subst_map are unordered; sort by name so the output is
  // canonical (the certificate layer requires byte-identical round trips).
  std::map<std::string, const std::vector<HState>*> vars;
  for (const auto& [x, states] : nha.var_map()) {
    vars.emplace(std::string(vocab.variables.NameOf(x)), &states);
  }
  for (const auto& [name, states] : vars) {
    std::string line = StrCat("var ", name);
    for (HState q : *states) line += StrCat(" ", q);
    out += line + "\n";
  }
  std::map<std::string, const std::vector<HState>*> substs;
  for (const auto& [z, states] : nha.subst_map()) {
    substs.emplace(std::string(vocab.substs.NameOf(z)), &states);
  }
  for (const auto& [name, states] : substs) {
    std::string line = StrCat("subst ", name);
    for (HState q : *states) line += StrCat(" ", q);
    out += line + "\n";
  }
  for (const Nha::Rule& rule : nha.rules()) {
    out += StrCat("rule ", vocab.symbols.NameOf(rule.symbol), " ",
                  rule.target, "\n");
    WriteNfa(rule.content, out);
  }
  out += "final\n";
  WriteNfa(nha.final_nfa(), out);
  return out;
}

Result<Nha> DeserializeNha(std::string_view text, hedge::Vocabulary& vocab) {
  LineReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 2 || (*magic)[0] != "nha" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'nha 1' header");
  }
  Result<std::vector<std::string>> states_line = reader.Next();
  if (!states_line.ok()) return states_line.status();
  if (states_line->size() != 2 || (*states_line)[0] != "states") {
    return Status::InvalidArgument("expected 'states <n>'");
  }
  Result<uint32_t> num_states = ParseU32((*states_line)[1]);
  if (!num_states.ok()) return num_states.status();

  Nha nha;
  nha.AddStates(*num_states);

  while (true) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    const std::string& tag = (*fields)[0];
    if (tag == "var" || tag == "subst") {
      if (fields->size() < 2) {
        return Status::InvalidArgument(StrCat("bad ", tag, " line"));
      }
      for (size_t i = 2; i < fields->size(); ++i) {
        Result<uint32_t> q = ParseU32((*fields)[i]);
        if (!q.ok()) return q.status();
        if (*q >= *num_states) {
          return Status::InvalidArgument(StrCat(tag, " state out of range"));
        }
        if (tag == "var") {
          nha.AddVariableState(vocab.variables.Intern((*fields)[1]), *q);
        } else {
          nha.AddSubstState(vocab.substs.Intern((*fields)[1]), *q);
        }
      }
    } else if (tag == "rule") {
      if (fields->size() != 3) {
        return Status::InvalidArgument("expected 'rule <symbol> <target>'");
      }
      Result<uint32_t> target = ParseU32((*fields)[2]);
      if (!target.ok()) return target.status();
      if (*target >= *num_states) {
        return Status::InvalidArgument("rule target out of range");
      }
      Result<Nfa> content = ReadNfa(reader);
      if (!content.ok()) return content.status();
      nha.AddRule(vocab.symbols.Intern((*fields)[1]),
                  std::move(content).value(), *target);
    } else if (tag == "final") {
      Result<Nfa> final_nfa = ReadNfa(reader);
      if (!final_nfa.ok()) return final_nfa.status();
      nha.SetFinal(std::move(final_nfa).value());
      return nha;
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected directive '", tag, "' near line ",
                 reader.line()));
    }
  }
}

std::string SerializeDha(const Dha& dha, const hedge::Vocabulary& vocab) {
  std::string out = "dha 1\n";
  out += StrCat("states ", dha.num_states(), " ", dha.sink(), "\n");
  out += StrCat("hstates ", dha.num_h_states(), " ", dha.h_start(), "\n");
  for (HhState h = 0; h < dha.num_h_states(); ++h) {
    for (HState q = 0; q < dha.num_states(); ++q) {
      HhState to = dha.HNext(h, q);
      if (to != dha.h_start()) out += StrCat("h ", h, " ", q, " ", to, "\n");
    }
  }
  std::map<std::string, const std::vector<HState>*> assigns;
  for (const auto& [symbol, row] : dha.assign_map()) {
    assigns.emplace(std::string(vocab.symbols.NameOf(symbol)), &row);
  }
  for (const auto& [name, row] : assigns) {
    for (HhState h = 0; h < row->size(); ++h) {
      out += StrCat("assign ", name, " ", h, " ", (*row)[h], "\n");
    }
  }
  std::map<std::string, HState> vars;
  for (const auto& [x, q] : dha.var_map()) {
    vars.emplace(std::string(vocab.variables.NameOf(x)), q);
  }
  for (const auto& [name, q] : vars) out += StrCat("var ", name, " ", q, "\n");
  std::map<std::string, HState> substs;
  for (const auto& [z, q] : dha.subst_map()) {
    substs.emplace(std::string(vocab.substs.NameOf(z)), q);
  }
  for (const auto& [name, q] : substs) {
    out += StrCat("subst ", name, " ", q, "\n");
  }
  const strre::Dfa& final = dha.final_dfa();
  out += StrCat("final ", final.num_states(), " ",
                final.start() == strre::kNoState
                    ? std::string("-")
                    : std::to_string(final.start()),
                "\n");
  std::string accepts = "accept";
  for (strre::StateId s = 0; s < final.num_states(); ++s) {
    if (final.IsAccepting(s)) accepts += StrCat(" ", s);
  }
  out += accepts + "\n";
  for (strre::StateId s = 0; s < final.num_states(); ++s) {
    std::vector<std::pair<strre::Symbol, strre::StateId>> sorted(
        final.TransitionsFrom(s).begin(), final.TransitionsFrom(s).end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [letter, to] : sorted) {
      out += StrCat("d ", s, " ", letter, " ", to, "\n");
    }
  }
  out += "end\n";
  return out;
}

Result<Dha> DeserializeDha(std::string_view text, hedge::Vocabulary& vocab) {
  LineReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 2 || (*magic)[0] != "dha" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'dha 1' header");
  }
  Result<std::vector<std::string>> states_line = reader.Next();
  if (!states_line.ok()) return states_line.status();
  if (states_line->size() != 3 || (*states_line)[0] != "states") {
    return Status::InvalidArgument("expected 'states <n> <sink>'");
  }
  Result<uint32_t> num_states = ParseU32((*states_line)[1]);
  Result<uint32_t> sink = ParseU32((*states_line)[2]);
  if (!num_states.ok()) return num_states.status();
  if (!sink.ok()) return sink.status();
  if (*num_states == 0 || *sink >= *num_states) {
    return Status::InvalidArgument("dha sink out of range");
  }
  Result<std::vector<std::string>> h_line = reader.Next();
  if (!h_line.ok()) return h_line.status();
  if (h_line->size() != 3 || (*h_line)[0] != "hstates") {
    return Status::InvalidArgument("expected 'hstates <n> <start>'");
  }
  Result<uint32_t> num_h = ParseU32((*h_line)[1]);
  Result<uint32_t> h_start = ParseU32((*h_line)[2]);
  if (!num_h.ok()) return num_h.status();
  if (!h_start.ok()) return h_start.status();
  if (*num_h == 0 || *h_start >= *num_h) {
    return Status::InvalidArgument("dha horizontal start out of range");
  }

  Dha dha(*num_states, *num_h, *h_start, *sink);
  while (true) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    const std::string& tag = (*fields)[0];
    if (tag == "h") {
      if (fields->size() != 4) {
        return Status::InvalidArgument("expected 'h <from> <q> <to>'");
      }
      Result<uint32_t> from = ParseU32((*fields)[1]);
      Result<uint32_t> q = ParseU32((*fields)[2]);
      Result<uint32_t> to = ParseU32((*fields)[3]);
      if (!from.ok() || !q.ok() || !to.ok()) {
        return Status::InvalidArgument("bad horizontal transition line");
      }
      if (*from >= *num_h || *to >= *num_h || *q >= *num_states) {
        return Status::InvalidArgument(
            "horizontal transition out of range");
      }
      dha.SetHTransition(*from, *q, *to);
    } else if (tag == "assign") {
      if (fields->size() != 4) {
        return Status::InvalidArgument("expected 'assign <symbol> <h> <q>'");
      }
      Result<uint32_t> h = ParseU32((*fields)[2]);
      Result<uint32_t> q = ParseU32((*fields)[3]);
      if (!h.ok() || !q.ok()) {
        return Status::InvalidArgument("bad assign line");
      }
      if (*h >= *num_h || *q >= *num_states) {
        return Status::InvalidArgument("assignment out of range");
      }
      dha.SetAssign(vocab.symbols.Intern((*fields)[1]), *h, *q);
    } else if (tag == "var" || tag == "subst") {
      if (fields->size() != 3) {
        return Status::InvalidArgument(StrCat("bad ", tag, " line"));
      }
      Result<uint32_t> q = ParseU32((*fields)[2]);
      if (!q.ok()) return q.status();
      if (*q >= *num_states) {
        return Status::InvalidArgument(StrCat(tag, " state out of range"));
      }
      if (tag == "var") {
        dha.SetVariableState(vocab.variables.Intern((*fields)[1]), *q);
      } else {
        dha.SetSubstState(vocab.substs.Intern((*fields)[1]), *q);
      }
    } else if (tag == "final") {
      if (fields->size() != 3) {
        return Status::InvalidArgument("expected 'final <states> <start>'");
      }
      Result<uint32_t> count = ParseU32((*fields)[1]);
      if (!count.ok()) return count.status();
      strre::Dfa final;
      for (uint32_t s = 0; s < *count; ++s) final.AddState(false);
      if ((*fields)[2] != "-") {
        Result<uint32_t> start = ParseU32((*fields)[2]);
        if (!start.ok()) return start.status();
        if (*start >= *count) {
          return Status::InvalidArgument("final dfa start out of range");
        }
        final.SetStart(*start);
      } else {
        // AddState auto-started the DFA on its first state; "-" means the
        // serialized automaton genuinely had none, so undo that or the
        // round trip is not canonical.
        final.SetStart(strre::kNoState);
      }
      Result<std::vector<std::string>> accepts = reader.Next();
      if (!accepts.ok()) return accepts.status();
      if (accepts->empty() || (*accepts)[0] != "accept") {
        return Status::InvalidArgument("expected 'accept ...' in final dfa");
      }
      for (size_t i = 1; i < accepts->size(); ++i) {
        Result<uint32_t> s = ParseU32((*accepts)[i]);
        if (!s.ok()) return s.status();
        if (*s >= *count) {
          return Status::InvalidArgument("final accept out of range");
        }
        final.SetAccepting(*s, true);
      }
      while (true) {
        Result<std::vector<std::string>> edge = reader.Next();
        if (!edge.ok()) return edge.status();
        if ((*edge)[0] == "end") break;
        if ((*edge)[0] != "d" || edge->size() != 4) {
          return Status::InvalidArgument(
              StrCat("unexpected line in final dfa near line ",
                     reader.line()));
        }
        Result<uint32_t> from = ParseU32((*edge)[1]);
        Result<uint32_t> letter = ParseU32((*edge)[2]);
        Result<uint32_t> to = ParseU32((*edge)[3]);
        if (!from.ok() || !letter.ok() || !to.ok()) {
          return Status::InvalidArgument("bad final dfa transition line");
        }
        if (*from >= *count || *to >= *count) {
          return Status::InvalidArgument(
              "final dfa transition out of range");
        }
        final.SetTransition(*from, *letter, *to);
      }
      dha.SetFinalDfa(std::move(final));
      return dha;
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected directive '", tag, "' near line ",
                 reader.line()));
    }
  }
}

}  // namespace hedgeq::automata
