#include "automata/serialize.h"

#include <sstream>

#include "util/strings.h"

namespace hedgeq::automata {

using strre::Nfa;

namespace {

void WriteNfa(const Nfa& nfa, std::string& out) {
  out += StrCat("nfa ", nfa.num_states(), " ",
                nfa.start() == strre::kNoState
                    ? std::string("-")
                    : std::to_string(nfa.start()),
                "\n");
  std::string accepts = "accept";
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsAccepting(s)) accepts += StrCat(" ", s);
  }
  out += accepts + "\n";
  for (strre::StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Transition& t : nfa.TransitionsFrom(s)) {
      out += StrCat("t ", s, " ", t.symbol, " ", t.to, "\n");
    }
    for (strre::StateId t : nfa.EpsilonsFrom(s)) {
      out += StrCat("e ", s, " ", t, "\n");
    }
  }
  out += "end\n";
}

class LineReader {
 public:
  explicit LineReader(std::string_view text) : lines_(StrSplit(text, '\n')) {}

  bool Done() const { return index_ >= lines_.size(); }

  // Next non-empty line, split on spaces.
  Result<std::vector<std::string>> Next() {
    while (index_ < lines_.size()) {
      std::string_view stripped = StripAsciiWhitespace(lines_[index_]);
      ++index_;
      if (stripped.empty() || stripped[0] == '#') continue;
      std::vector<std::string> fields;
      for (std::string& f : StrSplit(stripped, ' ')) {
        if (!f.empty()) fields.push_back(std::move(f));
      }
      return fields;
    }
    return Status::InvalidArgument("unexpected end of automaton text");
  }

  size_t line() const { return index_; }

 private:
  std::vector<std::string> lines_;
  size_t index_ = 0;
};

Result<uint32_t> ParseU32(const std::string& field) {
  uint32_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("expected a number, got '", field, "'"));
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  return value;
}

Result<Nfa> ReadNfa(LineReader& reader) {
  Result<std::vector<std::string>> header = reader.Next();
  if (!header.ok()) return header.status();
  if (header->size() != 3 || (*header)[0] != "nfa") {
    return Status::InvalidArgument(
        StrCat("expected 'nfa <states> <start>' near line ", reader.line()));
  }
  Result<uint32_t> count = ParseU32((*header)[1]);
  if (!count.ok()) return count.status();
  Nfa nfa;
  for (uint32_t s = 0; s < *count; ++s) nfa.AddState(false);
  if ((*header)[2] != "-") {
    Result<uint32_t> start = ParseU32((*header)[2]);
    if (!start.ok()) return start.status();
    if (*start >= *count) {
      return Status::InvalidArgument("nfa start out of range");
    }
    nfa.SetStart(*start);
  }

  Result<std::vector<std::string>> accepts = reader.Next();
  if (!accepts.ok()) return accepts.status();
  if (accepts->empty() || (*accepts)[0] != "accept") {
    return Status::InvalidArgument(
        StrCat("expected 'accept ...' near line ", reader.line()));
  }
  for (size_t i = 1; i < accepts->size(); ++i) {
    Result<uint32_t> s = ParseU32((*accepts)[i]);
    if (!s.ok()) return s.status();
    if (*s >= *count) return Status::InvalidArgument("accept out of range");
    nfa.SetAccepting(*s, true);
  }

  while (true) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    const std::string& tag = (*fields)[0];
    if (tag == "end") break;
    if (tag == "t" && fields->size() == 4) {
      Result<uint32_t> from = ParseU32((*fields)[1]);
      Result<uint32_t> letter = ParseU32((*fields)[2]);
      Result<uint32_t> to = ParseU32((*fields)[3]);
      if (!from.ok() || !letter.ok() || !to.ok()) {
        return Status::InvalidArgument("bad transition line");
      }
      if (*from >= *count || *to >= *count) {
        return Status::InvalidArgument("transition state out of range");
      }
      nfa.AddTransition(*from, *letter, *to);
    } else if (tag == "e" && fields->size() == 3) {
      Result<uint32_t> from = ParseU32((*fields)[1]);
      Result<uint32_t> to = ParseU32((*fields)[2]);
      if (!from.ok() || !to.ok()) {
        return Status::InvalidArgument("bad epsilon line");
      }
      if (*from >= *count || *to >= *count) {
        return Status::InvalidArgument("epsilon state out of range");
      }
      nfa.AddEpsilon(*from, *to);
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected line in nfa block near line ", reader.line()));
    }
  }
  return nfa;
}

}  // namespace

std::string SerializeNha(const Nha& nha, const hedge::Vocabulary& vocab) {
  std::string out = "nha 1\n";
  out += StrCat("states ", nha.num_states(), "\n");
  for (const auto& [x, states] : nha.var_map()) {
    std::string line = StrCat("var ", vocab.variables.NameOf(x));
    for (HState q : states) line += StrCat(" ", q);
    out += line + "\n";
  }
  for (const auto& [z, states] : nha.subst_map()) {
    std::string line = StrCat("subst ", vocab.substs.NameOf(z));
    for (HState q : states) line += StrCat(" ", q);
    out += line + "\n";
  }
  for (const Nha::Rule& rule : nha.rules()) {
    out += StrCat("rule ", vocab.symbols.NameOf(rule.symbol), " ",
                  rule.target, "\n");
    WriteNfa(rule.content, out);
  }
  out += "final\n";
  WriteNfa(nha.final_nfa(), out);
  return out;
}

Result<Nha> DeserializeNha(std::string_view text, hedge::Vocabulary& vocab) {
  LineReader reader(text);
  Result<std::vector<std::string>> magic = reader.Next();
  if (!magic.ok()) return magic.status();
  if (magic->size() != 2 || (*magic)[0] != "nha" || (*magic)[1] != "1") {
    return Status::InvalidArgument("expected 'nha 1' header");
  }
  Result<std::vector<std::string>> states_line = reader.Next();
  if (!states_line.ok()) return states_line.status();
  if (states_line->size() != 2 || (*states_line)[0] != "states") {
    return Status::InvalidArgument("expected 'states <n>'");
  }
  Result<uint32_t> num_states = ParseU32((*states_line)[1]);
  if (!num_states.ok()) return num_states.status();

  Nha nha;
  nha.AddStates(*num_states);

  while (true) {
    Result<std::vector<std::string>> fields = reader.Next();
    if (!fields.ok()) return fields.status();
    const std::string& tag = (*fields)[0];
    if (tag == "var" || tag == "subst") {
      if (fields->size() < 2) {
        return Status::InvalidArgument(StrCat("bad ", tag, " line"));
      }
      for (size_t i = 2; i < fields->size(); ++i) {
        Result<uint32_t> q = ParseU32((*fields)[i]);
        if (!q.ok()) return q.status();
        if (*q >= *num_states) {
          return Status::InvalidArgument(StrCat(tag, " state out of range"));
        }
        if (tag == "var") {
          nha.AddVariableState(vocab.variables.Intern((*fields)[1]), *q);
        } else {
          nha.AddSubstState(vocab.substs.Intern((*fields)[1]), *q);
        }
      }
    } else if (tag == "rule") {
      if (fields->size() != 3) {
        return Status::InvalidArgument("expected 'rule <symbol> <target>'");
      }
      Result<uint32_t> target = ParseU32((*fields)[2]);
      if (!target.ok()) return target.status();
      if (*target >= *num_states) {
        return Status::InvalidArgument("rule target out of range");
      }
      Result<Nfa> content = ReadNfa(reader);
      if (!content.ok()) return content.status();
      nha.AddRule(vocab.symbols.Intern((*fields)[1]),
                  std::move(content).value(), *target);
    } else if (tag == "final") {
      Result<Nfa> final_nfa = ReadNfa(reader);
      if (!final_nfa.ok()) return final_nfa.status();
      nha.SetFinal(std::move(final_nfa).value());
      return nha;
    } else {
      return Status::InvalidArgument(
          StrCat("unexpected directive '", tag, "' near line ",
                 reader.line()));
    }
  }
}

}  // namespace hedgeq::automata
