#include "automata/content_union.h"

namespace hedgeq::automata {

using strre::Nfa;

CombinedContent CombineContents(const Nha& nha) {
  CombinedContent out;
  for (uint32_t rule_index = 0; rule_index < nha.rules().size();
       ++rule_index) {
    const Nha::Rule& rule = nha.rules()[rule_index];
    strre::StateId offset = static_cast<strre::StateId>(out.nfa.num_states());
    for (strre::StateId s = 0; s < rule.content.num_states(); ++s) {
      out.nfa.AddState(false);
      out.accept_info.emplace_back();
      if (rule.content.IsAccepting(s)) {
        out.accept_info.back().push_back(rule_index);
      }
    }
    for (strre::StateId s = 0; s < rule.content.num_states(); ++s) {
      for (const Nfa::Transition& t : rule.content.TransitionsFrom(s)) {
        out.nfa.AddTransition(offset + s, t.symbol, offset + t.to);
      }
      for (strre::StateId t : rule.content.EpsilonsFrom(s)) {
        out.nfa.AddEpsilon(offset + s, offset + t);
      }
    }
    out.starts.push_back(rule.content.start() == strre::kNoState
                             ? strre::kNoState
                             : offset + rule.content.start());
  }
  return out;
}

}  // namespace hedgeq::automata
