#ifndef HEDGEQ_AUTOMATA_DHA_H_
#define HEDGEQ_AUTOMATA_DHA_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "automata/nha.h"
#include "hedge/hedge.h"
#include "strre/automaton.h"

namespace hedgeq::automata {

/// Horizontal-automaton state id (content-model DFA shared by all symbols).
using HhState = uint32_t;

/// Deterministic hedge automaton (Definition 3), engineered for the hot
/// path: one shared horizontal DFA over the state alphabet Q encodes every
/// alpha^{-1}(a, q) simultaneously (dense matrix), and per-symbol assignment
/// tables map the horizontal state reached after a child sequence to the
/// state alpha assigns. The transition function is total: lookups that miss
/// (unknown symbols/variables) yield the sink state, so every hedge has
/// exactly one computation.
class Dha {
 public:
  /// Creates a DHA with `num_states` states and `num_h` horizontal states.
  /// All horizontal transitions initially lead to `h_start`; fill them with
  /// SetHTransition before use.
  Dha(HState num_states, HhState num_h, HhState h_start, HState sink);

  void SetHTransition(HhState from, HState on, HhState to) {
    h_trans_[static_cast<size_t>(from) * num_states_ + on] = to;
  }
  void SetAssign(hedge::SymbolId symbol, HhState h, HState q);
  void SetVariableState(hedge::VarId x, HState q) { var_states_[x] = q; }
  void SetSubstState(hedge::SubstId z, HState q) { subst_states_[z] = q; }
  /// Final state sequence set F as a DFA over Q (need not be total; misses
  /// reject).
  void SetFinalDfa(strre::Dfa final_dfa) { final_ = std::move(final_dfa); }

  HState num_states() const { return num_states_; }
  HhState num_h_states() const { return num_h_; }
  HhState h_start() const { return h_start_; }
  HState sink() const { return sink_; }
  const strre::Dfa& final_dfa() const { return final_; }

  HhState HNext(HhState h, HState q) const {
    return h_trans_[static_cast<size_t>(h) * num_states_ + q];
  }
  /// alpha(symbol, w) where the horizontal DFA reached `h` on w.
  HState Assign(hedge::SymbolId symbol, HhState h) const;
  HState VariableState(hedge::VarId x) const;
  HState SubstState(hedge::SubstId z) const;

  /// The computation M||u (Definition 4): the state assigned to each node,
  /// indexed by NodeId. Runs in O(nodes).
  std::vector<HState> Run(const hedge::Hedge& h) const;

  /// Definition 5 acceptance.
  bool Accepts(const hedge::Hedge& h) const;

  /// Theorem 3 evaluation shortcut: along with the run, reports for every
  /// symbol-labeled node whether its child sequence (= its subhedge's ceil
  /// under M) lies in F — i.e. whether M-down-e would assign a marked state.
  struct MarkedRun {
    std::vector<HState> states;
    std::vector<bool> marks;
  };
  MarkedRun RunWithMarks(const hedge::Hedge& h) const;

  const std::unordered_map<hedge::VarId, HState>& var_map() const {
    return var_states_;
  }
  const std::unordered_map<hedge::SubstId, HState>& subst_map() const {
    return subst_states_;
  }
  const std::unordered_map<hedge::SymbolId, std::vector<HState>>& assign_map()
      const {
    return assign_;
  }

 private:
  HState num_states_;
  HhState num_h_;
  HhState h_start_;
  HState sink_;
  std::vector<HhState> h_trans_;  // [h * num_states_ + q]
  // Per symbol: assignment per horizontal state; absent symbol -> sink.
  std::unordered_map<hedge::SymbolId, std::vector<HState>> assign_;
  std::unordered_map<hedge::VarId, HState> var_states_;
  std::unordered_map<hedge::SubstId, HState> subst_states_;
  strre::Dfa final_;
};

/// Converts a DHA back to rule form (content models become DFAs read off the
/// horizontal matrix). Needed for products with NHAs (schema intersection).
/// `extra_vars` adds iota entries for document variables the DHA does not
/// know (they map to its sink) and `extra_symbols` adds explicit
/// assign-to-sink rules for unknown element names, so intersections and
/// complements cover the full document vocabulary.
Nha DhaToNha(const Dha& dha, std::span<const hedge::VarId> extra_vars = {},
             std::span<const hedge::SymbolId> extra_symbols = {});

/// The complement automaton: same transitions, final language complemented
/// over the DHA's state alphabet. L(out) = all hedges (over symbols/vars the
/// DHA knows plus anything mapped to the sink) not in L(dha).
Dha ComplementDha(const Dha& dha);

/// Theorem 3: the marked automaton M-down-e. States are pairs (q, bit)
/// encoded as 2q + bit; the bit is 1 exactly when the child sequence lies in
/// the final language of `dha`. The result accepts every hedge; `marked
/// states` are the odd ids. The subhedge condition ignores the node's own
/// label, so `extra_symbols` forces explicit assignment rows for document
/// symbols the DHA does not know (they assign (sink, bit) rather than
/// losing the bit to the sink default).
Dha BuildMarkedDha(const Dha& dha,
                   std::span<const hedge::SymbolId> extra_symbols = {});

}  // namespace hedgeq::automata

#endif  // HEDGEQ_AUTOMATA_DHA_H_
