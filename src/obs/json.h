#ifndef HEDGEQ_OBS_JSON_H_
#define HEDGEQ_OBS_JSON_H_

// Minimal JSON reader for the observability exporters' own output: the
// round-trip tests and the BENCH_*.json / metrics-snapshot tooling parse
// what obs emits. Supports the full value grammar (objects, arrays,
// strings with escapes, integers/doubles, true/false/null); numbers are
// kept as int64 when exactly representable. Not a general-purpose
// validating parser — errors come back as kInvalidArgument.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hedgeq::obs::json {

class Value;
using ValuePtr = std::shared_ptr<const Value>;

enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

class Value {
 public:
  Kind kind() const { return kind_; }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool boolean() const { return boolean_; }
  int64_t integer() const { return integer_; }
  double number() const {
    return kind_ == Kind::kInt ? static_cast<double>(integer_) : double_;
  }
  const std::string& string() const { return string_; }
  const std::vector<ValuePtr>& array() const { return array_; }
  const std::map<std::string, ValuePtr>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Get(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : it->second.get();
  }

  static ValuePtr MakeNull();
  static ValuePtr MakeBool(bool b);
  static ValuePtr MakeInt(int64_t v);
  static ValuePtr MakeDouble(double v);
  static ValuePtr MakeString(std::string s);
  static ValuePtr MakeArray(std::vector<ValuePtr> items);
  static ValuePtr MakeObject(std::map<std::string, ValuePtr> members);

 private:
  Kind kind_ = Kind::kNull;
  bool boolean_ = false;
  int64_t integer_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<ValuePtr> array_;
  std::map<std::string, ValuePtr> object_;
};

/// Parses one JSON document (leading/trailing whitespace allowed; trailing
/// garbage rejected).
Result<ValuePtr> Parse(std::string_view text);

}  // namespace hedgeq::obs::json

#endif  // HEDGEQ_OBS_JSON_H_
