#ifndef HEDGEQ_OBS_OBS_H_
#define HEDGEQ_OBS_OBS_H_

// hedgeq::obs — always-compiled, near-zero-cost-when-off observability.
//
// The paper's checkable claims (C1–C5) are per-phase cost claims: linear
// automaton runs, linear HRE→NHA compilation, exponential-worst-case
// determinization, two-traversal PHR evaluation. This subsystem turns them
// from wall-clock assertions into decomposed measurements: every pipeline
// stage opens a named Span and bumps named counters; exporters emit a
// stable JSON metrics snapshot and a Chrome trace_event file loadable in
// about:tracing / Perfetto.
//
// Cost model. Everything is gated on one process-wide relaxed-atomic bool:
// with observability disabled an instrumentation site costs a single
// relaxed load plus a predictable branch, so hot loops may stay
// instrumented (the bench zero-overhead guard in tests/obs_test.cc holds
// the line). Hot loops should nevertheless prefer *bulk* attribution —
// accumulate into a local and add once per call — over per-iteration
// macro hits.
//
// Thread safety. The registry is safe for concurrent use: metric handles
// are created under a mutex, live for the process lifetime (pointers are
// never invalidated), and are updated with relaxed atomics. Spans nest
// per-thread (thread-local depth); trace events are appended under a
// mutex, which only matters while tracing is explicitly enabled.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hedgeq::obs {

class Counter;
class Gauge;
class Histogram;

// ---------------------------------------------------------------------------
// Per-query scope hooks (see scope.h). While a QueryScope is open on the
// current thread, every metric update on that thread is also accumulated
// into the scope. The header-visible gate is one thread-local bool so the
// no-scope fast path stays a TLS load plus a branch; constinit guarantees
// no TLS init wrapper, keeping the access a direct load (and UBSan-clean).
namespace internal {
constinit inline thread_local bool t_scope_active = false;
void ScopeCounterAdd(const Counter* c, uint64_t delta);
void ScopeGaugeSet(const Gauge* g, uint64_t v);
void ScopeObserve(const Histogram* h, uint64_t v);
void ScopeSpanRecord(std::string_view name, uint64_t dur_ns);
/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Shared by every obs exporter.
void AppendJsonEscaped(std::string& out, std::string_view s);
}  // namespace internal

// ---------------------------------------------------------------------------
// Global gates.

/// True when metric collection is on. Single relaxed atomic load.
bool Enabled();
/// Master switch; off by default so library users pay nothing.
void SetEnabled(bool on);

/// True when span trace *collection* (not just aggregation) is on.
/// Implies nothing about Enabled(); callers turn both on for --trace.
bool TraceEnabled();
void SetTraceEnabled(bool on);

// ---------------------------------------------------------------------------
// Metric kinds. Handles are owned by the registry and valid forever.

/// Monotonic counter. Relaxed increments; torn reads impossible (64-bit
/// atomic).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (internal::t_scope_active) internal::ScopeCounterAdd(this, delta);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge with a monotonic-max helper (high-water marks).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Set(uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    if (internal::t_scope_active) internal::ScopeGaugeSet(this, v);
  }
  /// Raises the gauge to `v` if it is below (lock-free CAS loop).
  void SetMax(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    if (internal::t_scope_active) internal::ScopeGaugeSet(this, v);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket log2 histogram: bucket i counts observations v with
/// floor(log2(v)) == i (v == 0 lands in bucket 0), 64 buckets total, so
/// any uint64 value is representable without configuration.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  void Observe(uint64_t v) {
    size_t b = v == 0 ? 0 : static_cast<size_t>(63 - __builtin_clzll(v));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    if (internal::t_scope_active) internal::ScopeObserve(this, v);
  }
  /// Upper bound of log2 bucket `i`: the largest value that lands in it.
  static constexpr uint64_t BucketUpperBound(size_t i) {
    return i >= 63 ? ~uint64_t{0} : (uint64_t{2} << i) - 1;
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// ---------------------------------------------------------------------------
// Trace events (Chrome trace_event "X" complete events).

/// One completed span. Nesting is implied by time containment per thread
/// (the Chrome convention); `depth` additionally records the RAII nesting
/// level at open time so tests can assert structure without timestamps.
struct TraceEvent {
  std::string name;
  uint64_t ts_us = 0;   // microseconds since trace start
  uint64_t dur_us = 0;  // span duration in microseconds
  uint32_t tid = 0;     // dense per-process thread index
  uint32_t depth = 0;   // span nesting depth at open (0 = top level)
  std::vector<std::pair<std::string, uint64_t>> args;  // attached counters
};

/// Aggregated timing of one span name across the process (the "spans"
/// section of the metrics snapshot, as a value type): how many times the
/// stage ran and its total wall time. Returned by
/// MetricsRegistry::SpanAggregates for `--timings`-style reporting.
struct SpanAggregate {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

// ---------------------------------------------------------------------------
// Registry.

/// Process-wide metric registry. GetCounter/GetGauge/GetHistogram intern by
/// name (mutex-protected, slow path only — instrumentation macros cache the
/// returned pointer in a function-local static); the returned handles are
/// never invalidated. Aggregated span timings (count + total ns per span
/// name) are part of the snapshot, so per-phase attribution survives even
/// when full tracing is off.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Aggregates one finished span. Called by Span's destructor.
  void RecordSpan(std::string_view name, uint64_t dur_ns);

  /// Zeroes every value and drops collected trace events. Handles stay
  /// valid; registered names stay registered (snapshots keep their shape).
  void Reset();

  /// Stable JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...},"spans":{...}} with keys sorted lexicographically.
  /// Round-trips through obs::json::Parse.
  std::string MetricsJson() const;

  /// Aggregated span timings, sorted by name. Only stages that ran at
  /// least once appear — the source of the `hq --timings` table.
  std::vector<SpanAggregate> SpanAggregates() const;

  /// Every registered metric name (sorted, deduplicated across kinds),
  /// prefixed "counter/", "gauge/", "histogram/", "span/". This is the
  /// surface the check.sh golden-name gate diffs.
  std::vector<std::string> MetricNames() const;

  // Trace buffer management (used by Span and the exporters).
  void AppendTraceEvent(TraceEvent event);
  std::vector<TraceEvent> SnapshotTrace() const;
  void ClearTrace();

  /// Serializes collected events in Chrome trace_event JSON object format:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...}]}.
  /// Loadable in about:tracing / Perfetto.
  std::string ChromeTraceJson() const;

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry.
MetricsRegistry& Registry();

// ---------------------------------------------------------------------------
// Spans.

/// RAII timed span. Construction is a no-op unless Enabled(); destruction
/// aggregates (name, duration) into the registry and, when TraceEnabled(),
/// appends a TraceEvent. Exception-safe by construction: early returns and
/// unwinds close the span at the right nesting level.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a counter-style argument rendered into the trace event
  /// ("args" in Chrome trace format). No-op when the span is inactive.
  void AddArg(const char* key, uint64_t value);

  bool active() const { return active_; }

 private:
  const char* name_;
  bool active_ = false;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, uint64_t>> args_;
};

// ---------------------------------------------------------------------------
// Exporters.

/// Refreshes the process-level gauges (`process.peak_rss_bytes`,
/// `process.wall_ms`, `process.threads`) from the OS. Called by the
/// snapshot exporters so every emitted snapshot carries current values;
/// cheap enough to call ad hoc.
void UpdateProcessGauges();

/// Writes MetricsJson() to `path` ("-" = stdout). Returns false on I/O
/// failure.
bool WriteMetricsFile(const std::string& path);

/// Writes ChromeTraceJson() to `path`. Returns false on I/O failure.
bool WriteChromeTraceFile(const std::string& path);

// ---------------------------------------------------------------------------
// Instrumentation macros. Each site costs one relaxed load when disabled;
// the metric handle is interned once per site (function-local static).

#define HEDGEQ_OBS_COUNT(name, delta)                              \
  do {                                                             \
    if (::hedgeq::obs::Enabled()) {                                \
      static ::hedgeq::obs::Counter* const hq_obs_counter_ =       \
          ::hedgeq::obs::Registry().GetCounter(name);              \
      hq_obs_counter_->Add(static_cast<uint64_t>(delta));          \
    }                                                              \
  } while (0)

#define HEDGEQ_OBS_GAUGE_SET(name, v)                              \
  do {                                                             \
    if (::hedgeq::obs::Enabled()) {                                \
      static ::hedgeq::obs::Gauge* const hq_obs_gauge_ =           \
          ::hedgeq::obs::Registry().GetGauge(name);                \
      hq_obs_gauge_->Set(static_cast<uint64_t>(v));                \
    }                                                              \
  } while (0)

#define HEDGEQ_OBS_GAUGE_MAX(name, v)                              \
  do {                                                             \
    if (::hedgeq::obs::Enabled()) {                                \
      static ::hedgeq::obs::Gauge* const hq_obs_gauge_ =           \
          ::hedgeq::obs::Registry().GetGauge(name);                \
      hq_obs_gauge_->SetMax(static_cast<uint64_t>(v));             \
    }                                                              \
  } while (0)

#define HEDGEQ_OBS_OBSERVE(name, v)                                \
  do {                                                             \
    if (::hedgeq::obs::Enabled()) {                                \
      static ::hedgeq::obs::Histogram* const hq_obs_histogram_ =   \
          ::hedgeq::obs::Registry().GetHistogram(name);            \
      hq_obs_histogram_->Observe(static_cast<uint64_t>(v));        \
    }                                                              \
  } while (0)

/// Opens a named span for the rest of the enclosing scope.
#define HEDGEQ_OBS_SPAN(var, name) ::hedgeq::obs::Span var(name)

}  // namespace hedgeq::obs

#endif  // HEDGEQ_OBS_OBS_H_
