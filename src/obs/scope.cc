#include "obs/scope.h"

#include <algorithm>

#include "obs/catalogue.h"
#include "obs/flight.h"

namespace hedgeq::obs {

namespace {
// The innermost open scope on this thread. obs.h's header-visible gate
// (internal::t_scope_active) mirrors "t_current != nullptr" so the inline
// fast paths never need this type.
thread_local QueryScope* t_current = nullptr;
}  // namespace

namespace internal {

void ScopeCounterAdd(const Counter* c, uint64_t delta) {
  if (t_current != nullptr) t_current->AccumulateCounter(c, delta);
}
void ScopeGaugeSet(const Gauge* g, uint64_t v) {
  if (t_current != nullptr) t_current->AccumulateGauge(g, v);
}
void ScopeObserve(const Histogram* h, uint64_t v) {
  if (t_current != nullptr) t_current->AccumulateHistogram(h, v);
}
void ScopeSpanRecord(std::string_view name, uint64_t dur_ns) {
  if (t_current != nullptr) t_current->AccumulateSpan(name, dur_ns);
}

}  // namespace internal

uint64_t ScopeSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

uint64_t ScopeSnapshot::SpanTotalNs(std::string_view name) const {
  for (const SpanAggregate& s : spans) {
    if (s.name == name) return s.total_ns;
  }
  return 0;
}

QueryScope::QueryScope(std::string label) : label_(std::move(label)) {
  if (!Enabled()) return;
  active_ = true;
  parent_ = t_current;
  t_current = this;
  internal::t_scope_active = true;
  start_ = std::chrono::steady_clock::now();
}

QueryScope::~QueryScope() {
  if (!active_) return;
  const uint64_t wall_ns = ElapsedNs();
  // Pop before flushing/reporting so nothing below self-attributes.
  t_current = parent_;
  internal::t_scope_active = parent_ != nullptr;
  if (parent_ != nullptr) {
    for (const auto& [c, v] : counters_) parent_->counters_[c] += v;
    for (const auto& [g, v] : gauges_) parent_->gauges_[g] = v;
    for (const auto& [h, cell] : hists_) {
      HistCell& p = parent_->hists_[h];
      p.count += cell.count;
      p.sum += cell.sum;
    }
    for (const auto& [name, cell] : spans_) {
      SpanCell& p = parent_->spans_[name];
      p.count += cell.count;
      p.total_ns += cell.total_ns;
    }
    for (auto& kv : annotations_) {
      parent_->annotations_.push_back(std::move(kv));
    }
    return;
  }
  // Top-level scope: feed the rolling latency distribution and, when the
  // flight recorder is on, deposit the post-mortem record.
  if (Enabled()) {
    Registry()
        .GetHistogram(metrics::kHistQueryLatencyUs)
        ->Observe(wall_ns / 1000);
  }
  if (FlightRecorderEnabled()) {
    ScopeSnapshot snap = Snapshot();
    snap.wall_ns = wall_ns;
    RecordFlight(snap);
  }
}

QueryScope* QueryScope::Current() { return t_current; }

uint64_t QueryScope::ElapsedNs() const {
  if (!active_) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void QueryScope::Annotate(std::string_view key, std::string_view value) {
  if (!active_) return;
  annotations_.emplace_back(std::string(key), std::string(value));
}

ScopeSnapshot QueryScope::Snapshot() const {
  ScopeSnapshot out;
  out.label = label_;
  out.wall_ns = ElapsedNs();
  out.counters.reserve(counters_.size());
  for (const auto& [c, v] : counters_) out.counters.emplace_back(c->name(), v);
  std::sort(out.counters.begin(), out.counters.end());
  out.gauges.reserve(gauges_.size());
  for (const auto& [g, v] : gauges_) out.gauges.emplace_back(g->name(), v);
  std::sort(out.gauges.begin(), out.gauges.end());
  out.hists.reserve(hists_.size());
  for (const auto& [h, cell] : hists_) {
    out.hists.push_back(ScopeSnapshot::Hist{h->name(), cell.count, cell.sum});
  }
  std::sort(out.hists.begin(), out.hists.end(),
            [](const ScopeSnapshot::Hist& a, const ScopeSnapshot::Hist& b) {
              return a.name < b.name;
            });
  out.spans.reserve(spans_.size());
  for (const auto& [name, cell] : spans_) {
    out.spans.push_back(SpanAggregate{name, cell.count, cell.total_ns});
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.name < b.name;
            });
  out.annotations = annotations_;
  return out;
}

void QueryScope::AccumulateCounter(const Counter* c, uint64_t delta) {
  counters_[c] += delta;
}
void QueryScope::AccumulateGauge(const Gauge* g, uint64_t v) {
  gauges_[g] = v;
}
void QueryScope::AccumulateHistogram(const Histogram* h, uint64_t v) {
  HistCell& cell = hists_[h];
  ++cell.count;
  cell.sum += v;
}
void QueryScope::AccumulateSpan(std::string_view name, uint64_t dur_ns) {
  SpanCell& cell = spans_[std::string(name)];
  ++cell.count;
  cell.total_ns += dur_ns;
}

}  // namespace hedgeq::obs
