#include "obs/catalogue.h"

#include "obs/obs.h"

namespace hedgeq::obs {

namespace {

constexpr const char* kCounters[] = {
    metrics::kXmlParseBytes,
    metrics::kXmlParseNodes,
    metrics::kHreCompileAstNodes,
    metrics::kHreCompileNhaStates,
    metrics::kHreCompileNhaRules,
    metrics::kTrimCalls,
    metrics::kTrimStatesRemoved,
    metrics::kDetSubsetsExplored,
    metrics::kDetHSetsExplored,
    metrics::kDetClosureRecomputations,
    metrics::kDetInternedBitsetHits,
    metrics::kDetSteps,
    metrics::kDetCertifyNs,
    metrics::kDetTotalNs,
    metrics::kLazyStatesMaterialized,
    metrics::kLazyCacheHits,
    metrics::kLazyCacheMisses,
    metrics::kLazyCacheEvictions,
    metrics::kPhrCompileTriplets,
    metrics::kPhrCompileClasses,
    metrics::kPhrCompileMirrorStates,
    metrics::kPhrEvalPass1Nodes,
    metrics::kPhrEvalPass2Nodes,
    metrics::kPhrEvalLocated,
    metrics::kPhrEvalFallbackRuns,
    metrics::kQueryEagerCompiles,
    metrics::kQueryLazyFallbacks,
    metrics::kSchemaValidateEvents,
    metrics::kSchemaValidateFallbackRuns,
    metrics::kSchemaTransformRuns,
    metrics::kVerifyChecksRun,
    metrics::kVerifyFindings,
    metrics::kCacheHit,
    metrics::kCacheLightChecks,
    metrics::kCacheMiss,
    metrics::kCacheValidateReject,
    metrics::kCacheQuarantine,
    metrics::kCacheStore,
    metrics::kCacheStoreError,
    metrics::kCacheEvictions,
    metrics::kServeAdmitted,
    metrics::kServeShed,
    metrics::kServeRetry,
    metrics::kServeBreakerOpen,
};

constexpr const char* kGauges[] = {
    metrics::kXmlParseMaxDepth,
    metrics::kDetCertifyFracPct,
    metrics::kLazyPeakCacheBytes,
    metrics::kSchemaValidateMaxDepth,
    metrics::kProcessPeakRssBytes,
    metrics::kProcessWallMs,
    metrics::kProcessThreads,
    metrics::kServeQueueDepth,
};

constexpr const char* kHistograms[] = {
    metrics::kHistDocNodes,
    metrics::kHistDetSubsets,
    metrics::kHistQueryLatencyUs,
    metrics::kHistQueueWaitUs,
};

}  // namespace

std::span<const char* const> CatalogueCounters() { return kCounters; }
std::span<const char* const> CatalogueGauges() { return kGauges; }
std::span<const char* const> CatalogueHistograms() { return kHistograms; }

void RegisterCatalogue() {
  MetricsRegistry& registry = Registry();
  for (const char* name : kCounters) registry.GetCounter(name);
  for (const char* name : kGauges) registry.GetGauge(name);
  for (const char* name : kHistograms) registry.GetHistogram(name);
}

}  // namespace hedgeq::obs
