#ifndef HEDGEQ_OBS_SCOPE_H_
#define HEDGEQ_OBS_SCOPE_H_

// Per-query attribution: a QueryScope is an RAII overlay on the process
// registry. While a scope is active on a thread, every counter increment,
// gauge set, histogram observation and span close on that thread is
// *also* accumulated into the scope (the process registry still sees
// everything — scopes attribute, they never divert). Closing a scope
// flushes its totals into the enclosing scope, so nesting composes: an
// outer "session" scope sees the sum of its inner "query" scopes.
//
// Scopes are strictly thread-local: work done by other threads while a
// scope is open is visible to the process registry but not to the scope.
// This keeps the enabled fast path at one thread-local load plus a
// branch per instrumentation site (the overlay map is only touched when
// a scope is actually open) and makes scopes safe without any locking.
//
// A top-level scope (no enclosing scope) that closes while the flight
// recorder is enabled deposits its snapshot as a flight record
// (src/obs/flight.h), so long-running servers get a post-mortem ring of
// the last N queries for free.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace hedgeq::obs {

/// Everything one scope attributed: counters/gauges by metric name,
/// histogram count+sum pairs, span aggregates, free-form annotations
/// (cache verdicts, HQV findings, budget outcomes), and the scope's own
/// wall time. All vectors are sorted by name for deterministic output.
struct ScopeSnapshot {
  std::string label;
  uint64_t wall_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, uint64_t>> gauges;  // last value seen
  struct Hist {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
  };
  std::vector<Hist> hists;
  std::vector<SpanAggregate> spans;
  std::vector<std::pair<std::string, std::string>> annotations;

  /// Value of one scoped counter (0 when the scope never saw it).
  uint64_t CounterValue(std::string_view name) const;
  /// Total nanoseconds of one scoped span (0 when it never closed here).
  uint64_t SpanTotalNs(std::string_view name) const;
};

/// RAII per-query attribution scope. Construction is near-free when
/// observability is disabled (the scope stays inert and records
/// nothing). Scopes must be destroyed on the thread that created them,
/// in LIFO order — guaranteed by construction for stack objects.
class QueryScope {
 public:
  explicit QueryScope(std::string label);
  ~QueryScope();
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// The innermost scope open on this thread (nullptr when none).
  static QueryScope* Current();

  /// Attaches a free-form key/value to the scope (and so to its flight
  /// record): cache rejection reasons, budget outcomes, HQV codes.
  /// Repeated keys are kept in arrival order.
  void Annotate(std::string_view key, std::string_view value);

  /// The scope's attribution so far (wall_ns is elapsed-to-now). Cheap
  /// enough for per-command reporting; the maps are scope-local so no
  /// lock is taken.
  ScopeSnapshot Snapshot() const;

  const std::string& label() const { return label_; }
  bool active() const { return active_; }
  uint64_t ElapsedNs() const;

  // Internal accumulation entry points, called via the internal::Scope*
  // hooks in obs.h / obs.cc. Not for direct use.
  void AccumulateCounter(const Counter* c, uint64_t delta);
  void AccumulateGauge(const Gauge* g, uint64_t v);
  void AccumulateHistogram(const Histogram* h, uint64_t v);
  void AccumulateSpan(std::string_view name, uint64_t dur_ns);

 private:
  struct SpanCell {
    uint64_t count = 0;
    uint64_t total_ns = 0;
  };
  struct HistCell {
    uint64_t count = 0;
    uint64_t sum = 0;
  };

  std::string label_;
  bool active_ = false;
  QueryScope* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  // Keyed by registry handle (stable for the process lifetime); names are
  // resolved at snapshot/flush time, keeping the hot path allocation-free
  // after the first touch of each metric.
  std::unordered_map<const Counter*, uint64_t> counters_;
  std::unordered_map<const Gauge*, uint64_t> gauges_;
  std::unordered_map<const Histogram*, HistCell> hists_;
  std::unordered_map<std::string, SpanCell> spans_;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

}  // namespace hedgeq::obs

#endif  // HEDGEQ_OBS_SCOPE_H_
