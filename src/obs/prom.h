#ifndef HEDGEQ_OBS_PROM_H_
#define HEDGEQ_OBS_PROM_H_

// Prometheus text exposition (version 0.0.4) of the metrics registry,
// behind `--metrics-format=prom` on the CLIs. Metric names are the
// catalogue names with dots mapped to underscores and a `hedgeq_` prefix
// (`cache.hit` → `hedgeq_cache_hit`); log2 histograms are emitted as
// native Prometheus histograms (cumulative `_bucket{le="..."}` series
// using the exact log2 bucket upper bounds, plus `_sum`/`_count`) and
// additionally as an exact `_quantile{q="..."}` gauge family for p50/p90/
// p99; span aggregates become `hedgeq_span_{count,total_ns}{stage="..."}`
// counter families.

#include <cstdint>
#include <string>

namespace hedgeq::obs {

class Histogram;

/// Exact quantile extraction from a log2 histogram: the smallest bucket
/// upper bound whose cumulative count reaches ceil(q * count). Because
/// buckets are ranges, this is the tightest upper bound the histogram can
/// certify — never an interpolated (and therefore fabricated) value.
/// Returns 0 for an empty histogram. `q` is clamped to [0, 1].
uint64_t HistogramQuantile(const Histogram& h, double q);

/// Full registry snapshot in Prometheus text format. Refreshes the
/// process gauges first, like MetricsJson().
std::string PrometheusText();

/// Writes PrometheusText() to `path` ("-" = stdout).
bool WritePrometheusFile(const std::string& path);

}  // namespace hedgeq::obs

#endif  // HEDGEQ_OBS_PROM_H_
