#ifndef HEDGEQ_OBS_CATALOGUE_H_
#define HEDGEQ_OBS_CATALOGUE_H_

// The stable metric-name catalogue. Names are part of the tool-output
// contract (like the HQL/HQV diagnostic code families): CI diffs metric
// snapshots structurally and check.sh golden-gates the name set, so never
// rename or drop a name — only append. docs/OBSERVABILITY.md documents
// each entry; keep the two in sync.

#include <span>
#include <string_view>

namespace hedgeq::obs {

namespace metrics {

// --- xml: parsing (tree-building and streaming).
inline constexpr const char* kXmlParseBytes = "xml.parse.bytes";
inline constexpr const char* kXmlParseNodes = "xml.parse.nodes";
inline constexpr const char* kXmlParseMaxDepth = "xml.parse.max_depth";  // gauge

// --- hre: HRE -> NHA compilation (Lemma 1; claim C2).
inline constexpr const char* kHreCompileAstNodes = "hre.compile.ast_nodes";
inline constexpr const char* kHreCompileNhaStates = "hre.compile.nha_states";
inline constexpr const char* kHreCompileNhaRules = "hre.compile.nha_rules";

// --- automata: trim + subset construction (Theorem 1; claim C3).
inline constexpr const char* kTrimCalls = "automata.trim.calls";
inline constexpr const char* kTrimStatesRemoved = "automata.trim.states_removed";
inline constexpr const char* kDetSubsetsExplored =
    "automata.determinize.subsets_explored";
inline constexpr const char* kDetHSetsExplored =
    "automata.determinize.h_sets_explored";
inline constexpr const char* kDetClosureRecomputations =
    "automata.determinize.closure_recomputations";
inline constexpr const char* kDetInternedBitsetHits =
    "automata.determinize.interned_bitset_hits";
inline constexpr const char* kDetSteps = "automata.determinize.steps";
inline constexpr const char* kDetCertifyNs = "automata.determinize.certify_ns";
inline constexpr const char* kDetTotalNs = "automata.determinize.total_ns";
// Checker share of the last certified determinization, in percent (gauge;
// the ROADMAP `certify_frac` target is < 15).
inline constexpr const char* kDetCertifyFracPct =
    "automata.determinize.certify_frac_pct";

// --- automata.lazy: the on-the-fly engine (absorbed LazyDha::EvalStats).
inline constexpr const char* kLazyStatesMaterialized =
    "automata.lazy.states_materialized";
inline constexpr const char* kLazyCacheHits = "automata.lazy.cache_hits";
inline constexpr const char* kLazyCacheMisses = "automata.lazy.cache_misses";
inline constexpr const char* kLazyCacheEvictions =
    "automata.lazy.cache_evictions";
inline constexpr const char* kLazyPeakCacheBytes =
    "automata.lazy.peak_cache_bytes";  // gauge (high-water mark)

// --- phr: Theorem 4 compilation + Algorithm 1 evaluation (claims C4, C5).
inline constexpr const char* kPhrCompileTriplets = "phr.compile.triplets";
inline constexpr const char* kPhrCompileClasses = "phr.compile.classes";
inline constexpr const char* kPhrCompileMirrorStates =
    "phr.compile.mirror_states";
inline constexpr const char* kPhrEvalPass1Nodes = "phr.eval.pass1.nodes";
inline constexpr const char* kPhrEvalPass2Nodes = "phr.eval.pass2.nodes";
inline constexpr const char* kPhrEvalLocated = "phr.eval.located";
inline constexpr const char* kPhrEvalFallbackRuns = "phr.eval.fallback_runs";

// --- query: engine selection at evaluator construction.
inline constexpr const char* kQueryEagerCompiles = "query.eager_compiles";
inline constexpr const char* kQueryLazyFallbacks = "query.lazy_fallbacks";

// --- schema: streaming validation + schema transforms.
inline constexpr const char* kSchemaValidateEvents = "schema.validate.events";
inline constexpr const char* kSchemaValidateMaxDepth =
    "schema.validate.max_depth";  // gauge
inline constexpr const char* kSchemaValidateFallbackRuns =
    "schema.validate.fallback_runs";
inline constexpr const char* kSchemaTransformRuns = "schema.transform.runs";

// --- verify: the independent checker.
inline constexpr const char* kVerifyChecksRun = "verify.checks_run";
inline constexpr const char* kVerifyFindings = "verify.findings";

// --- cache: the certificate-checked persistent automaton cache
// (src/cache/). A hit is only counted after the entry re-validated; every
// rejected entry is also quarantined, so validate_reject <= quarantine
// (quarantine additionally counts undeserializable and mismatched entries).
inline constexpr const char* kCacheHit = "cache.hit";
inline constexpr const char* kCacheLightChecks = "cache.light_checks";
inline constexpr const char* kCacheMiss = "cache.miss";
inline constexpr const char* kCacheValidateReject = "cache.validate_reject";
inline constexpr const char* kCacheQuarantine = "cache.quarantine";
inline constexpr const char* kCacheStore = "cache.store";
inline constexpr const char* kCacheStoreError = "cache.store_error";
inline constexpr const char* kCacheEvictions = "cache.evictions";

// --- serve: the concurrent query service (src/serve/). Admission and
// overload behaviour: admitted counts requests accepted into the queue,
// shed counts every request that got a terminal kDeadlineExceeded /
// queue-full / draining answer without (or instead of) executing, retry
// counts backoff-retried transient attempts, breaker_open counts
// closed->open transitions of the eager-path circuit breaker.
inline constexpr const char* kServeAdmitted = "serve.admitted";
inline constexpr const char* kServeShed = "serve.shed";
inline constexpr const char* kServeRetry = "serve.retry";
inline constexpr const char* kServeBreakerOpen = "serve.breaker_open";
inline constexpr const char* kServeQueueDepth = "serve.queue_depth";  // gauge

// --- process: whole-process health gauges, refreshed from the OS by
// obs::UpdateProcessGauges() every time a snapshot is exported.
inline constexpr const char* kProcessPeakRssBytes =
    "process.peak_rss_bytes";  // gauge
inline constexpr const char* kProcessWallMs = "process.wall_ms";  // gauge
inline constexpr const char* kProcessThreads = "process.threads";  // gauge

// --- histograms (value distributions across one process).
inline constexpr const char* kHistDocNodes = "hist.doc_nodes";
inline constexpr const char* kHistDetSubsets = "hist.determinize_subsets";
// Wall time of each top-level QueryScope, in microseconds: the rolling
// per-query latency distribution behind the Prometheus p50/p90/p99.
inline constexpr const char* kHistQueryLatencyUs = "hist.query_latency_us";
// Admission-queue wait of each request popped (or shed) by the serve
// worker pool, in microseconds.
inline constexpr const char* kHistQueueWaitUs = "hist.queue_wait_us";

}  // namespace metrics

/// Span names used by the pipeline instrumentation. A span name appears in
/// the snapshot's "spans" section only after the stage has run at least
/// once, so the golden-name gate covers counters/gauges/histograms (which
/// RegisterCatalogue pre-registers) and treats spans as advisory.
namespace spans {
inline constexpr const char* kXmlParse = "xml.parse";
inline constexpr const char* kHreCompile = "hre.compile";
inline constexpr const char* kTrim = "automata.trim";
inline constexpr const char* kDeterminize = "automata.determinize";
inline constexpr const char* kDeterminizeCertify =
    "automata.determinize.certify";
inline constexpr const char* kPhrCompile = "phr.compile";
inline constexpr const char* kPhrEvalPass1 = "phr.eval.pass1";
inline constexpr const char* kPhrEvalPass2 = "phr.eval.pass2";
inline constexpr const char* kSchemaValidate = "schema.validate";
inline constexpr const char* kSchemaTransform = "schema.transform";
inline constexpr const char* kVerifyCheck = "verify.check";
inline constexpr const char* kCacheLoad = "cache.load";
inline constexpr const char* kCacheStoreSpan = "cache.store";
}  // namespace spans

/// Counter names in the catalogue (everything in metrics:: that is a
/// counter), for RegisterCatalogue and the name-stability test.
std::span<const char* const> CatalogueCounters();
/// Gauge names in the catalogue.
std::span<const char* const> CatalogueGauges();
/// Histogram names in the catalogue.
std::span<const char* const> CatalogueHistograms();

/// Pre-registers every catalogued metric in the process registry, so a
/// snapshot enumerates the full stable name set even on code paths the
/// invocation did not exercise. The CLIs call this when --metrics is given;
/// the check.sh golden-name gate relies on it.
void RegisterCatalogue();

}  // namespace hedgeq::obs

#endif  // HEDGEQ_OBS_CATALOGUE_H_
