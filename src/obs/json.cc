#include "obs/json.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace hedgeq::obs::json {

ValuePtr Value::MakeNull() { return std::make_shared<Value>(); }

ValuePtr Value::MakeBool(bool b) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kBool;
  v->boolean_ = b;
  return v;
}

ValuePtr Value::MakeInt(int64_t i) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kInt;
  v->integer_ = i;
  return v;
}

ValuePtr Value::MakeDouble(double d) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kDouble;
  v->double_ = d;
  return v;
}

ValuePtr Value::MakeString(std::string s) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kString;
  v->string_ = std::move(s);
  return v;
}

ValuePtr Value::MakeArray(std::vector<ValuePtr> items) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kArray;
  v->array_ = std::move(items);
  return v;
}

ValuePtr Value::MakeObject(std::map<std::string, ValuePtr> members) {
  auto v = std::make_shared<Value>();
  v->kind_ = Kind::kObject;
  v->object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ValuePtr> ParseDocument() {
    SkipWs();
    Result<ValuePtr> v = ParseValue(0);
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr size_t kMaxDepth = 128;

  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ValuePtr> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value::MakeString(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value::MakeBool(true);
        }
        return Err("bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value::MakeBool(false);
        }
        return Err("bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value::MakeNull();
        }
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<ValuePtr> ParseObject(size_t depth) {
    ++pos_;  // '{'
    std::map<std::string, ValuePtr> members;
    SkipWs();
    if (Consume('}')) return Value::MakeObject(std::move(members));
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      Result<ValuePtr> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      members[std::move(key).value()] = std::move(v).value();
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::MakeObject(std::move(members));
      return Err("expected ',' or '}'");
    }
  }

  Result<ValuePtr> ParseArray(size_t depth) {
    ++pos_;  // '['
    std::vector<ValuePtr> items;
    SkipWs();
    if (Consume(']')) return Value::MakeArray(std::move(items));
    while (true) {
      SkipWs();
      Result<ValuePtr> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      items.push_back(std::move(v).value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::MakeArray(std::move(items));
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling: the exporters only
          // escape control characters, all below U+0080).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Err("bad escape");
      }
    }
    return Err("unterminated string");
  }

  Result<ValuePtr> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Err("bad number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Value::MakeInt(static_cast<int64_t>(v));
      }
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number");
    return Value::MakeDouble(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ValuePtr> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace hedgeq::obs::json
