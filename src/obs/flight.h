#ifndef HEDGEQ_OBS_FLIGHT_H_
#define HEDGEQ_OBS_FLIGHT_H_

// Flight recorder: a fixed-size lock-free ring of structured per-query
// records — the post-mortem answer to "what did the last N queries do".
// Each record is the distilled ScopeSnapshot of one top-level QueryScope:
// stage durations, the scoped cache/verify/query counters (cache verdicts
// and HQV findings ride in as counters plus free-form annotations), the
// budget outcome, and wall time.
//
// Design. Slots are plain-old-data (fixed-size char fields, no heap), so
// a record can be published and read with memcpy under a per-slot seqlock:
// writers claim a slot with one fetch_add on the global sequence, flip the
// slot's version odd, copy, flip it even; a writer that finds its slot
// mid-write (ring wrapped under extreme concurrency) drops the record and
// counts the drop rather than blocking. Readers copy the payload out and
// discard it if the version moved — dumping never blocks recording.
//
// The ring is dumped as JSON (round-trips through obs::json::Parse) via
// `--flight-recorder=FILE` on the CLIs, on SIGUSR1, and automatically on
// error exit; `hq repl` can dump it on demand with the `flight` command.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scope.h"

namespace hedgeq::obs {

/// Capacity limits of one record. Longer inputs are truncated, never
/// dropped: a post-mortem with a clipped label beats no post-mortem.
inline constexpr size_t kFlightRecordStages = 12;
inline constexpr size_t kFlightRecordCounters = 16;
inline constexpr size_t kFlightRecordAnnotations = 6;

/// One decoded flight record (the ring itself stores fixed-size POD).
struct FlightRecordView {
  uint64_t seq = 0;  // 1-based global sequence; monotone across the ring
  std::string label;
  std::string outcome;  // "ok" unless the scope annotated an outcome
  uint64_t unix_ms = 0;  // wall-clock publish time (for log correlation)
  uint64_t wall_ns = 0;
  std::vector<SpanAggregate> stages;  // sorted by total_ns descending
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Master gate; off by default. Turning it on makes every *top-level*
/// QueryScope deposit a record as it closes.
bool FlightRecorderEnabled();
void SetFlightRecorderEnabled(bool on);

/// Number of ring slots (fixed at build time).
size_t FlightRecorderCapacity();

/// Deposits one record built from `snap`. The outcome is taken from the
/// last "outcome" annotation ("ok" when absent); counters are selected
/// scoped-first (cache./verify./query./budget. prefixes, then the rest in
/// name order) until the record is full; stages keep the biggest
/// total_ns. Called automatically by ~QueryScope; callable directly.
void RecordFlight(const ScopeSnapshot& snap);

/// Decoded records, oldest to newest. Torn slots (mid-write during the
/// read) are skipped.
std::vector<FlightRecordView> FlightRecords();

/// Records dropped because their slot was mid-write when claimed.
uint64_t FlightRecordsDropped();

/// JSON dump: {"flight_recorder": {"capacity": N, "dropped": D,
/// "records": [...]}}. Round-trips through obs::json::Parse.
std::string FlightRecorderJson();

/// Writes FlightRecorderJson() to `path` ("-" = stdout).
bool WriteFlightRecorderFile(const std::string& path);

/// Clears the ring and the drop counter (tests, repl `reset`).
void ResetFlightRecorder();

}  // namespace hedgeq::obs

#endif  // HEDGEQ_OBS_FLIGHT_H_
