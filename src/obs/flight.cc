#include "obs/flight.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "obs/obs.h"

namespace hedgeq::obs {

namespace {

constexpr size_t kRingSlots = 64;
constexpr size_t kNameCap = 44;   // stage / counter names (truncated)
constexpr size_t kLabelCap = 120;
constexpr size_t kOutcomeCap = 24;
constexpr size_t kAnnKeyCap = 24;
constexpr size_t kAnnValueCap = 72;

// Fixed-size, heap-free record payload: memcpy-able under the seqlock.
struct PodStage {
  char name[kNameCap];
  uint64_t count;
  uint64_t total_ns;
};
struct PodCounter {
  char name[kNameCap];
  uint64_t value;
};
struct PodAnnotation {
  char key[kAnnKeyCap];
  char value[kAnnValueCap];
};
struct PodRecord {
  uint64_t seq;  // 1-based; 0 = slot never written
  char label[kLabelCap];
  char outcome[kOutcomeCap];
  uint64_t unix_ms;
  uint64_t wall_ns;
  uint32_t n_stages;
  uint32_t n_counters;
  uint32_t n_annotations;
  PodStage stages[kFlightRecordStages];
  PodCounter counters[kFlightRecordCounters];
  PodAnnotation annotations[kFlightRecordAnnotations];
};

// Per-slot seqlock: even = stable, odd = mid-write. Writers CAS the version
// from its last-stable value to odd; losing the CAS means the ring wrapped
// onto a slot another writer still owns — drop rather than block.
struct Slot {
  std::atomic<uint64_t> version{0};
  PodRecord record{};
};

struct Ring {
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> next_seq{0};
  std::atomic<uint64_t> dropped{0};
  Slot slots[kRingSlots];
};

Ring& TheRing() {
  static Ring* ring = new Ring();  // leaked: usable during static destruction
  return *ring;
}

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Ordering weight for the counter-selection pass: the record keeps the
/// most diagnostic counters when the scope touched more than fit.
int CounterRank(std::string_view name) {
  if (name.rfind("cache.", 0) == 0) return 0;
  if (name.rfind("verify.", 0) == 0) return 1;
  if (name.rfind("query.", 0) == 0) return 2;
  if (name.rfind("budget.", 0) == 0) return 3;
  return 4;
}

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void BuildPod(const ScopeSnapshot& snap, uint64_t seq, PodRecord& out) {
  out.seq = seq;
  CopyTruncated(out.label, kLabelCap, snap.label);
  std::string_view outcome = "ok";
  for (const auto& [key, value] : snap.annotations) {
    if (key == "outcome") outcome = value;  // last one wins
  }
  CopyTruncated(out.outcome, kOutcomeCap, outcome);
  out.unix_ms = NowUnixMs();
  out.wall_ns = snap.wall_ns;

  // Stages: keep the biggest contributors, emit them largest-first.
  std::vector<SpanAggregate> stages = snap.spans;
  std::sort(stages.begin(), stages.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  out.n_stages = static_cast<uint32_t>(
      std::min(stages.size(), kFlightRecordStages));
  for (uint32_t i = 0; i < out.n_stages; ++i) {
    CopyTruncated(out.stages[i].name, kNameCap, stages[i].name);
    out.stages[i].count = stages[i].count;
    out.stages[i].total_ns = stages[i].total_ns;
  }

  // Counters: diagnostic families first, then the rest alphabetically.
  std::vector<std::pair<std::string, uint64_t>> counters = snap.counters;
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) {
              const int ra = CounterRank(a.first);
              const int rb = CounterRank(b.first);
              if (ra != rb) return ra < rb;
              return a.first < b.first;
            });
  out.n_counters = static_cast<uint32_t>(
      std::min(counters.size(), kFlightRecordCounters));
  for (uint32_t i = 0; i < out.n_counters; ++i) {
    CopyTruncated(out.counters[i].name, kNameCap, counters[i].first);
    out.counters[i].value = counters[i].second;
  }

  out.n_annotations = static_cast<uint32_t>(
      std::min(snap.annotations.size(), kFlightRecordAnnotations));
  for (uint32_t i = 0; i < out.n_annotations; ++i) {
    CopyTruncated(out.annotations[i].key, kAnnKeyCap,
                  snap.annotations[i].first);
    CopyTruncated(out.annotations[i].value, kAnnValueCap,
                  snap.annotations[i].second);
  }
}

}  // namespace

bool FlightRecorderEnabled() {
  return TheRing().enabled.load(std::memory_order_relaxed);
}

void SetFlightRecorderEnabled(bool on) {
  TheRing().enabled.store(on, std::memory_order_relaxed);
}

size_t FlightRecorderCapacity() { return kRingSlots; }

void RecordFlight(const ScopeSnapshot& snap) {
  Ring& ring = TheRing();
  const uint64_t seq =
      ring.next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = ring.slots[(seq - 1) % kRingSlots];
  // The slot's last stable version for this wrap; claim it or drop.
  uint64_t stable = slot.version.load(std::memory_order_relaxed);
  if ((stable & 1) != 0 ||
      !slot.version.compare_exchange_strong(stable, stable + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  BuildPod(snap, seq, slot.record);
  slot.version.store(stable + 2, std::memory_order_release);
}

std::vector<FlightRecordView> FlightRecords() {
  Ring& ring = TheRing();
  std::vector<FlightRecordView> out;
  out.reserve(kRingSlots);
  for (Slot& slot : ring.slots) {
    PodRecord copy;
    const uint64_t before = slot.version.load(std::memory_order_acquire);
    if ((before & 1) != 0) continue;  // mid-write: skip, never block
    std::memcpy(&copy, &slot.record, sizeof(copy));
    if (slot.version.load(std::memory_order_acquire) != before) continue;
    if (copy.seq == 0) continue;  // never written
    FlightRecordView view;
    view.seq = copy.seq;
    view.label = copy.label;
    view.outcome = copy.outcome;
    view.unix_ms = copy.unix_ms;
    view.wall_ns = copy.wall_ns;
    view.stages.reserve(copy.n_stages);
    for (uint32_t i = 0; i < copy.n_stages && i < kFlightRecordStages; ++i) {
      view.stages.push_back(SpanAggregate{copy.stages[i].name,
                                          copy.stages[i].count,
                                          copy.stages[i].total_ns});
    }
    view.counters.reserve(copy.n_counters);
    for (uint32_t i = 0; i < copy.n_counters && i < kFlightRecordCounters;
         ++i) {
      view.counters.emplace_back(copy.counters[i].name, copy.counters[i].value);
    }
    view.annotations.reserve(copy.n_annotations);
    for (uint32_t i = 0;
         i < copy.n_annotations && i < kFlightRecordAnnotations; ++i) {
      view.annotations.emplace_back(copy.annotations[i].key,
                                    copy.annotations[i].value);
    }
    out.push_back(std::move(view));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecordView& a, const FlightRecordView& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t FlightRecordsDropped() {
  return TheRing().dropped.load(std::memory_order_relaxed);
}

std::string FlightRecorderJson() {
  using internal::AppendJsonEscaped;
  const std::vector<FlightRecordView> records = FlightRecords();
  std::string out;
  out.reserve(1024 + records.size() * 512);
  out += "{\"flight_recorder\": {\"capacity\": ";
  out += std::to_string(FlightRecorderCapacity());
  out += ", \"dropped\": ";
  out += std::to_string(FlightRecordsDropped());
  out += ", \"records\": [";
  bool first_record = true;
  for (const FlightRecordView& r : records) {
    if (!first_record) out += ", ";
    first_record = false;
    out += "\n  {\"seq\": ";
    out += std::to_string(r.seq);
    out += ", \"label\": \"";
    AppendJsonEscaped(out, r.label);
    out += "\", \"outcome\": \"";
    AppendJsonEscaped(out, r.outcome);
    out += "\", \"unix_ms\": ";
    out += std::to_string(r.unix_ms);
    out += ", \"wall_ns\": ";
    out += std::to_string(r.wall_ns);
    out += ",\n   \"stages\": [";
    bool first = true;
    for (const SpanAggregate& s : r.stages) {
      if (!first) out += ", ";
      first = false;
      out += "{\"name\": \"";
      AppendJsonEscaped(out, s.name);
      out += "\", \"count\": ";
      out += std::to_string(s.count);
      out += ", \"total_ns\": ";
      out += std::to_string(s.total_ns);
      out += "}";
    }
    out += "],\n   \"counters\": {";
    first = true;
    for (const auto& [name, value] : r.counters) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      AppendJsonEscaped(out, name);
      out += "\": ";
      out += std::to_string(value);
    }
    out += "},\n   \"annotations\": {";
    first = true;
    for (const auto& [key, value] : r.annotations) {
      if (!first) out += ", ";
      first = false;
      out += "\"";
      AppendJsonEscaped(out, key);
      out += "\": \"";
      AppendJsonEscaped(out, value);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}}\n";
  return out;
}

bool WriteFlightRecorderFile(const std::string& path) {
  const std::string text = FlightRecorderJson();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok && written != text.size()) std::fclose(f);
  return ok;
}

void ResetFlightRecorder() {
  Ring& ring = TheRing();
  ring.next_seq.store(0, std::memory_order_relaxed);
  ring.dropped.store(0, std::memory_order_relaxed);
  for (Slot& slot : ring.slots) {
    uint64_t stable = slot.version.load(std::memory_order_relaxed);
    if ((stable & 1) != 0 ||
        !slot.version.compare_exchange_strong(stable, stable + 1,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      continue;  // writer owns it; its record will land post-reset
    }
    slot.record.seq = 0;
    slot.version.store(stable + 2, std::memory_order_release);
  }
}

}  // namespace hedgeq::obs
