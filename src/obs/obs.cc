#include "obs/obs.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "obs/catalogue.h"

namespace hedgeq::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_trace_enabled{false};

// Dense thread ids keep the Chrome trace readable (and deterministic per
// thread-creation order, unlike pthread handles).
std::atomic<uint32_t> g_next_tid{0};
uint32_t ThisThreadId() {
  thread_local uint32_t tid = g_next_tid.fetch_add(1);
  return tid;
}

// Per-thread RAII nesting level for spans.
thread_local uint32_t t_span_depth = 0;

uint64_t ToUs(std::chrono::steady_clock::duration d) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

// Wall-clock zero for process.wall_ms: captured when this translation
// unit's statics initialize, i.e. as close to process start as the
// library can observe.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

namespace internal {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace internal

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  internal::AppendJsonEscaped(out, s);
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool TraceEnabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}
void SetTraceEnabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry implementation.

struct SpanStat {
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
};

struct MetricsRegistry::Impl {
  std::mutex mu;  // guards the maps; values are atomics updated lock-free
  // deques: stable addresses under growth.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::deque<SpanStat> span_stats;
  std::unordered_map<std::string, Counter*> counter_index;
  std::unordered_map<std::string, Gauge*> gauge_index;
  std::unordered_map<std::string, Histogram*> histogram_index;
  std::unordered_map<std::string, SpanStat*> span_index;

  std::mutex trace_mu;
  std::vector<TraceEvent> trace;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked singleton: metric handles must outlive every static destructor
  // that might still bump a counter.
  static Impl* instance = new Impl();
  return *instance;
}

MetricsRegistry& Registry() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counter_index.find(std::string(name));
  if (it != im.counter_index.end()) return it->second;
  im.counters.emplace_back(std::string(name));
  Counter* c = &im.counters.back();
  im.counter_index.emplace(c->name(), c);
  return c;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauge_index.find(std::string(name));
  if (it != im.gauge_index.end()) return it->second;
  im.gauges.emplace_back(std::string(name));
  Gauge* g = &im.gauges.back();
  im.gauge_index.emplace(g->name(), g);
  return g;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histogram_index.find(std::string(name));
  if (it != im.histogram_index.end()) return it->second;
  im.histograms.emplace_back(std::string(name));
  Histogram* h = &im.histograms.back();
  im.histogram_index.emplace(h->name(), h);
  return h;
}

void MetricsRegistry::RecordSpan(std::string_view name, uint64_t dur_ns) {
  Impl& im = impl();
  SpanStat* stat;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    auto it = im.span_index.find(std::string(name));
    if (it != im.span_index.end()) {
      stat = it->second;
    } else {
      im.span_stats.emplace_back();
      stat = &im.span_stats.back();
      im.span_index.emplace(std::string(name), stat);
    }
  }
  stat->count.fetch_add(1, std::memory_order_relaxed);
  stat->total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  if (internal::t_scope_active) internal::ScopeSpanRecord(name, dur_ns);
}

void MetricsRegistry::Reset() {
  Impl& im = impl();
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (Counter& c : im.counters) c.Reset();
    for (Gauge& g : im.gauges) g.Reset();
    for (Histogram& h : im.histograms) h.Reset();
    for (SpanStat& s : im.span_stats) {
      s.count.store(0, std::memory_order_relaxed);
      s.total_ns.store(0, std::memory_order_relaxed);
    }
  }
  ClearTrace();
}

void UpdateProcessGauges() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux, bytes on Darwin.
#if defined(__APPLE__)
    uint64_t peak = static_cast<uint64_t>(usage.ru_maxrss);
#else
    uint64_t peak = static_cast<uint64_t>(usage.ru_maxrss) * 1024;
#endif
    Registry().GetGauge(metrics::kProcessPeakRssBytes)->Set(peak);
  }
  uint64_t wall_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - g_process_start)
          .count());
  Registry().GetGauge(metrics::kProcessWallMs)->Set(wall_ms);
  uint64_t threads = 1;
#if defined(__linux__)
  if (std::ifstream status("/proc/self/status"); status) {
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("Threads:", 0) == 0) {
        threads = static_cast<uint64_t>(
            std::strtoull(line.c_str() + sizeof("Threads:") - 1, nullptr, 10));
        if (threads == 0) threads = 1;
        break;
      }
    }
  }
#endif
  Registry().GetGauge(metrics::kProcessThreads)->Set(threads);
}

std::string MetricsRegistry::MetricsJson() const {
  UpdateProcessGauges();
  Impl& im = impl();
  // Copy values out under the structural lock, then format. std::map gives
  // the stable (sorted) key order the snapshot contract promises.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, uint64_t> gauges;
  struct HistogramCopy {
    uint64_t count, sum;
    std::vector<std::pair<size_t, uint64_t>> nonzero;  // (log2 bucket, n)
  };
  std::map<std::string, HistogramCopy> histograms;
  struct SpanCopy {
    uint64_t count, total_ns;
  };
  std::map<std::string, SpanCopy> spans;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (const Counter& c : im.counters) counters[c.name()] = c.value();
    for (const Gauge& g : im.gauges) gauges[g.name()] = g.value();
    for (const Histogram& h : im.histograms) {
      HistogramCopy copy{h.count(), h.sum(), {}};
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (uint64_t n = h.bucket(b); n != 0) copy.nonzero.emplace_back(b, n);
      }
      histograms[h.name()] = std::move(copy);
    }
    for (const auto& [name, stat] : im.span_index) {
      spans[name] = SpanCopy{stat->count.load(std::memory_order_relaxed),
                             stat->total_ns.load(std::memory_order_relaxed)};
    }
  }

  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(out, name);
    out += "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(out, name);
    out += "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [b, n] : h.nonzero) {
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "{\"log2\": " + std::to_string(b) +
             ", \"count\": " + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"spans\": {";
  first = true;
  for (const auto& [name, s] : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(out, name);
    out += "\": {\"count\": " + std::to_string(s.count) +
           ", \"total_ns\": " + std::to_string(s.total_ns) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::vector<SpanAggregate> MetricsRegistry::SpanAggregates() const {
  Impl& im = impl();
  std::vector<SpanAggregate> out;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    out.reserve(im.span_index.size());
    for (const auto& [name, stat] : im.span_index) {
      out.push_back(
          SpanAggregate{name, stat->count.load(std::memory_order_relaxed),
                        stat->total_ns.load(std::memory_order_relaxed)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  Impl& im = impl();
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    for (const Counter& c : im.counters) names.push_back("counter/" + c.name());
    for (const Gauge& g : im.gauges) names.push_back("gauge/" + g.name());
    for (const Histogram& h : im.histograms) {
      names.push_back("histogram/" + h.name());
    }
    for (const auto& [name, stat] : im.span_index) {
      (void)stat;
      names.push_back("span/" + name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void MetricsRegistry::AppendTraceEvent(TraceEvent event) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.trace_mu);
  im.trace.push_back(std::move(event));
}

std::vector<TraceEvent> MetricsRegistry::SnapshotTrace() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.trace_mu);
  return im.trace;
}

void MetricsRegistry::ClearTrace() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.trace_mu);
  im.trace.clear();
}

std::string MetricsRegistry::ChromeTraceJson() const {
  std::vector<TraceEvent> events = SnapshotTrace();
  // Chrome's viewer sorts internally, but a deterministic order makes the
  // file diffable.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(out, e.name);
    out += "\", \"cat\": \"hedgeq\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(e.tid) + ", \"ts\": " + std::to_string(e.ts_us) +
           ", \"dur\": " + std::to_string(e.dur_us) + ", \"args\": {";
    bool afirst = true;
    out += "\"depth\": " + std::to_string(e.depth);
    afirst = false;
    for (const auto& [k, v] : e.args) {
      if (!afirst) out += ", ";
      afirst = false;
      out += "\"";
      AppendEscaped(out, k);
      out += "\": " + std::to_string(v);
    }
    out += "}}";
  }
  out += first ? "]" : "\n]";
  out += ", \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Span.

Span::Span(const char* name) : name_(name) {
  if (!Enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  --t_span_depth;
  uint64_t dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count());
  Registry().RecordSpan(name_, dur_ns);
  if (TraceEnabled()) {
    TraceEvent event;
    event.name = name_;
    // ts relative to the process steady-clock epoch of the trace buffer:
    // use the span's own start against time zero of the buffer. We store
    // absolute steady-clock microseconds; the exporter's consumers only
    // need consistent relative values.
    event.ts_us = ToUs(start_.time_since_epoch());
    event.dur_us = ToUs(end - start_);
    event.tid = ThisThreadId();
    event.depth = depth_;
    event.args = std::move(args_);
    Registry().AppendTraceEvent(std::move(event));
  }
}

void Span::AddArg(const char* key, uint64_t value) {
  if (!active_) return;
  args_.emplace_back(key, value);
}

// ---------------------------------------------------------------------------
// Exporters.

namespace {
bool WriteStringToFile(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body;
  return static_cast<bool>(out);
}
}  // namespace

bool WriteMetricsFile(const std::string& path) {
  return WriteStringToFile(path, Registry().MetricsJson());
}

bool WriteChromeTraceFile(const std::string& path) {
  return WriteStringToFile(path, Registry().ChromeTraceJson());
}

}  // namespace hedgeq::obs
