#include "obs/prom.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace hedgeq::obs {

namespace {

constexpr double kQuantiles[] = {0.50, 0.90, 0.99};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99"};

/// Catalogue name → Prometheus metric name: dots become underscores (the
/// catalogue uses [a-z0-9._] only, already valid otherwise) + namespace
/// prefix.
std::string PromName(std::string_view name) {
  std::string out = "hedgeq_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += c == '.' ? '_' : c;
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void AppendLabelEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendSimpleFamily(std::string& out, std::string_view name,
                        const char* type, uint64_t value) {
  const std::string prom = PromName(name);
  out += "# TYPE " + prom + " " + type + "\n";
  out += prom + " " + std::to_string(value) + "\n";
}

void AppendHistogramFamily(std::string& out, std::string_view name,
                           const Histogram& h) {
  const std::string prom = PromName(name);
  const uint64_t count = h.count();
  out += "# TYPE " + prom + " histogram\n";
  // Emit cumulative buckets up to the highest populated one; `le` carries
  // the exact log2 upper bound so no precision is invented.
  size_t top = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucket(i) != 0) top = i;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= top; ++i) {
    cumulative += h.bucket(i);
    out += prom + "_bucket{le=\"" +
           std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
  out += prom + "_sum " + std::to_string(h.sum()) + "\n";
  out += prom + "_count " + std::to_string(count) + "\n";
  // Exact quantiles as a companion gauge family (summary-style quantiles
  // on a histogram name would collide with the bucket series).
  out += "# TYPE " + prom + "_quantile gauge\n";
  for (size_t qi = 0; qi < 3; ++qi) {
    out += prom + "_quantile{q=\"" + kQuantileLabels[qi] + "\"} " +
           std::to_string(HistogramQuantile(h, kQuantiles[qi])) + "\n";
  }
}

}  // namespace

uint64_t HistogramQuantile(const Histogram& h, double q) {
  const uint64_t count = h.count();
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the quantile observation, 1-based; q=0 still needs one.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    cumulative += h.bucket(i);
    if (cumulative >= rank) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

std::string PrometheusText() {
  UpdateProcessGauges();
  MetricsRegistry& registry = Registry();
  std::string out;
  out.reserve(4096);
  // MetricNames() is the same sorted kind-prefixed surface the golden-name
  // gate diffs, so the prom exposition enumerates exactly the snapshot set.
  for (const std::string& prefixed : registry.MetricNames()) {
    const size_t slash = prefixed.find('/');
    if (slash == std::string::npos) continue;
    const std::string_view kind(prefixed.data(), slash);
    const std::string_view name(prefixed.data() + slash + 1,
                                prefixed.size() - slash - 1);
    if (kind == "counter") {
      AppendSimpleFamily(out, name, "counter",
                         registry.GetCounter(name)->value());
    } else if (kind == "gauge") {
      AppendSimpleFamily(out, name, "gauge", registry.GetGauge(name)->value());
    } else if (kind == "histogram") {
      AppendHistogramFamily(out, name, *registry.GetHistogram(name));
    }
    // "span/" names are handled below from the aggregate table.
  }
  std::vector<SpanAggregate> spans = registry.SpanAggregates();
  // Same contract as the JSON snapshot: a stage appears once it has run.
  // (After a Reset the registry keeps zero-count span names around.)
  spans.erase(std::remove_if(spans.begin(), spans.end(),
                             [](const SpanAggregate& s) {
                               return s.count == 0;
                             }),
              spans.end());
  if (!spans.empty()) {
    out += "# TYPE hedgeq_span_count counter\n";
    for (const SpanAggregate& s : spans) {
      out += "hedgeq_span_count{stage=\"";
      AppendLabelEscaped(out, s.name);
      out += "\"} " + std::to_string(s.count) + "\n";
    }
    out += "# TYPE hedgeq_span_total_ns counter\n";
    for (const SpanAggregate& s : spans) {
      out += "hedgeq_span_total_ns{stage=\"";
      AppendLabelEscaped(out, s.name);
      out += "\"} " + std::to_string(s.total_ns) + "\n";
    }
  }
  return out;
}

bool WritePrometheusFile(const std::string& path) {
  const std::string text = PrometheusText();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok && written != text.size()) std::fclose(f);
  return ok;
}

}  // namespace hedgeq::obs
