#include "hre/from_nha.h"

#include <atomic>
#include <map>
#include <unordered_map>
#include <vector>

#include "strre/ops.h"
#include "util/bitset.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace hedgeq::hre {

using automata::HState;
using automata::Nha;
using strre::Nfa;
using strre::Regex;

Hre RegexToHre(const Regex& regex,
               const std::function<Hre(strre::Symbol)>& leaf) {
  switch (regex->kind()) {
    case strre::RegexKind::kEmptySet:
      return HEmptySet();
    case strre::RegexKind::kEpsilon:
      return HEpsilon();
    case strre::RegexKind::kSymbol:
      return leaf(regex->symbol());
    case strre::RegexKind::kConcat:
      return HConcat(RegexToHre(regex->left(), leaf),
                     RegexToHre(regex->right(), leaf));
    case strre::RegexKind::kUnion:
      return HUnion(RegexToHre(regex->left(), leaf),
                    RegexToHre(regex->right(), leaf));
    case strre::RegexKind::kStar:
      return HStar(RegexToHre(regex->left(), leaf));
    case strre::RegexKind::kPlus: {
      Hre inner = RegexToHre(regex->left(), leaf);
      return HConcat(inner, HStar(inner));
    }
    case strre::RegexKind::kOptional:
      return HUnion(RegexToHre(regex->left(), leaf), HEpsilon());
  }
  HEDGEQ_CHECK_MSG(false, "unreachable RegexKind");
  return HEmptySet();
}

namespace {

// The Lemma 2 construction. "Split states" are the (symbol, state) pairs
// that occur as rule targets; they are the only states that can label
// non-leaf nodes, so they are the connectors and the members of Q1/Q2.
// Letters of content/final regexes live in a combined space:
//   [0, n)           original states as leaf letters (via iota),
//   [n, n + splits)  split states (zeta(q) = the pair's symbol).
class Lemma2 {
 public:
  Lemma2(const Nha& nha, hedge::Vocabulary& vocab, FromNhaWitness* witness)
      : nha_(nha), vocab_(vocab), n_(nha.num_states()), witness_(witness) {}

  Result<Hre> Build() {
    if (!nha_.subst_map().empty()) {
      return Status::InvalidArgument(
          "Lemma 2 applies to hedge automata over Sigma and X; languages "
          "with substitution-symbol leaves are not expression-denotable");
    }
    // Enumerate split states and their per-split content regexes.
    std::map<std::pair<hedge::SymbolId, HState>, uint32_t> split_ids;
    for (const Nha::Rule& rule : nha_.rules()) {
      auto key = std::make_pair(rule.symbol, rule.target);
      if (!split_ids.contains(key)) {
        uint32_t id = static_cast<uint32_t>(splits_.size());
        split_ids.emplace(key, id);
        splits_.push_back(key);
      }
    }
    if (splits_.size() > 62) {
      return Status::ResourceExhausted(
          StrCat("Lemma 2 construction supports at most 62 split states, "
                 "got ",
                 splits_.size()));
    }
    for (size_t i = 0; i < splits_.size(); ++i) {
      subst_.push_back(vocab_.substs.Intern(StrCat("_zq", i)));
    }

    // Lift each original-state letter to its leaf/split variants.
    Bitset leaf_state(n_ == 0 ? 1 : n_);
    for (const auto& [x, states] : nha_.var_map()) {
      (void)x;
      for (HState q : states) leaf_state.Set(q);
    }
    auto lift = [&](strre::Symbol q) {
      std::vector<strre::Symbol> out;
      if (q < n_ && leaf_state.Test(q)) out.push_back(q);
      for (size_t i = 0; i < splits_.size(); ++i) {
        if (splits_[i].second == q) {
          out.push_back(static_cast<strre::Symbol>(n_ + i));
        }
      }
      return out;
    };

    // Content regex per split state: union of its rules' contents, lifted.
    content_.resize(splits_.size());
    for (size_t i = 0; i < splits_.size(); ++i) {
      Nfa combined;
      bool first = true;
      for (const Nha::Rule& rule : nha_.rules()) {
        if (rule.symbol != splits_[i].first ||
            rule.target != splits_[i].second) {
          continue;
        }
        combined = first ? rule.content
                         : strre::UnionNfa(combined, rule.content);
        first = false;
      }
      content_[i] =
          strre::NfaToRegex(strre::SubstituteSets(combined, lift));
    }

    // Leaf expansions: for each original state, the union of variables
    // mapping to it.
    leaf_expr_.assign(n_, HEmptySet());
    for (const auto& [x, states] : nha_.var_map()) {
      for (HState q : states) {
        leaf_expr_[q] = HUnion(leaf_expr_[q], HVar(x));
      }
    }

    // Final: replace each split letter r by zeta(r)<R(r, all, {})> and
    // each leaf letter by its variable union.
    Regex final_regex =
        strre::NfaToRegex(strre::SubstituteSets(nha_.final_nfa(), lift));
    const uint64_t all = splits_.empty()
                             ? 0
                             : (splits_.size() == 62
                                    ? ~uint64_t{0} >> 2
                                    : (uint64_t{1} << splits_.size()) - 1);
    Hre result = RegexToHre(final_regex, [&](strre::Symbol letter) {
      if (letter < n_) return leaf_expr_[letter];
      uint32_t c = static_cast<uint32_t>(letter - n_);
      return HTree(splits_[c].first, R(c, all, 0));
    });
    if (witness_ != nullptr) {
      witness_->splits = splits_;
      witness_->substs = subst_;
      witness_->result = result;
    }
    return result;
  }

 private:
  // R(q, Q1, Q2) of the paper, memoized; Q1/Q2 are bitmasks over splits.
  Hre R(uint32_t c, uint64_t q1, uint64_t q2) {
    auto key = std::make_tuple(c, q1, q2);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    Hre result;
    if (q1 == 0) {
      result = Base(c, q2);
    } else {
      // p := the highest split in Q1 (a fixed elimination order keeps the
      // number of distinct (Q1, Q2) arguments polynomial in practice).
      uint32_t p = 63 - static_cast<uint32_t>(__builtin_clzll(q1));
      uint64_t q1_rest = q1 & ~(uint64_t{1} << p);
      uint64_t q2_with_p = q2 | (uint64_t{1} << p);
      hedge::SubstId zp = subst_[p];

      Hre rp = R(p, q1_rest, q2);
      Hre rp_up = R(p, q1_rest, q2_with_p);
      Hre rq_up = R(c, q1_rest, q2_with_p);
      Hre rq = R(c, q1_rest, q2);
      // R(q, Q1 u {p}, Q2) =
      //   (R(p,Q1,Q2) o_p R(p,Q1,Q2 u {p})^p  u  R(p,Q1,Q2))
      //     o_p R(q,Q1,Q2 u {p})  u  R(q,Q1,Q2).
      Hre middle = HUnion(HEmbed(rp, zp, HVClose(rp_up, zp)), rp);
      if (!failpoint::Check("from_nha/drop-alternative").ok()) {
        // Seeded bug: forget the "p never occurs" alternative, shrinking
        // the language. The recurrence replay in CheckFromNha must flag
        // the entry (HQV014).
        result = HEmbed(std::move(middle), zp, rq_up);
      } else {
        result = HUnion(HEmbed(std::move(middle), zp, rq_up), rq);
      }
    }
    memo_.emplace(key, result);
    if (witness_ != nullptr) {
      witness_->entries.push_back(FromNhaWitness::Entry{c, q1, q2, result});
    }
    return result;
  }

  // Base case: every node of the content is a leaf or a connector whose
  // split state lies in Q2.
  Hre Base(uint32_t c, uint64_t q2) {
    return RegexToHre(content_[c], [&](strre::Symbol letter) {
      if (letter < n_) return leaf_expr_[letter];
      uint32_t d = static_cast<uint32_t>(letter - n_);
      if (q2 & (uint64_t{1} << d)) {
        return HSubstLeaf(splits_[d].first, subst_[d]);
      }
      return HEmptySet();
    });
  }

  const Nha& nha_;
  hedge::Vocabulary& vocab_;
  const size_t n_;
  FromNhaWitness* const witness_;
  std::vector<std::pair<hedge::SymbolId, HState>> splits_;
  std::vector<Hre> leaf_expr_;
  std::vector<hedge::SubstId> subst_;
  std::vector<Regex> content_;
  std::map<std::tuple<uint32_t, uint64_t, uint64_t>, Hre> memo_;
};

std::atomic<FromNhaValidationHook> g_from_nha_hook{nullptr};

}  // namespace

void SetFromNhaValidationHook(FromNhaValidationHook hook) {
  g_from_nha_hook.store(hook, std::memory_order_relaxed);
}

FromNhaValidationHook GetFromNhaValidationHook() {
  return g_from_nha_hook.load(std::memory_order_relaxed);
}

Result<Hre> NhaToHre(const Nha& nha, hedge::Vocabulary& vocab) {
  return NhaToHre(nha, vocab, nullptr);
}

Result<Hre> NhaToHre(const Nha& nha, hedge::Vocabulary& vocab,
                     FromNhaWitness* witness) {
  FromNhaValidationHook hook = GetFromNhaValidationHook();
  FromNhaWitness local;
  FromNhaWitness* sink =
      witness != nullptr ? witness : (hook != nullptr ? &local : nullptr);
  Lemma2 builder(nha, vocab, sink);
  Result<Hre> result = builder.Build();
  if (result.ok() && hook != nullptr) {
    HEDGEQ_RETURN_IF_ERROR(hook(nha, *result, *sink));
  }
  return result;
}

}  // namespace hedgeq::hre
