#ifndef HEDGEQ_HRE_AST_H_
#define HEDGEQ_HRE_AST_H_

#include <memory>
#include <string>

#include "hedge/hedge.h"
#include "util/status.h"

namespace hedgeq::hre {

/// The ten forms of hedge regular expressions (Definition 11).
enum class HreKind {
  kEmptySet,   // {}          : the empty language
  kEpsilon,    // ()          : { epsilon }
  kVariable,   // $x          : { x }
  kTree,       // a<e>        : { a<u> | u in L(e) }
  kConcat,     // e1 e2
  kUnion,      // e1 | e2
  kStar,       // e*
  kSubstLeaf,  // a<%z>       : { a<z> }
  kEmbed,      // e1 @z e2    : L(e1) o_z L(e2)
  kVClose,     // e^z         : iterated self-embedding at z
};

class HreNode;
/// Hedge regular expressions are immutable shared trees.
using Hre = std::shared_ptr<const HreNode>;

/// One node of a hedge regular expression. Construct via the factories.
class HreNode {
 public:
  HreNode(HreKind kind, InternId id, hedge::SubstId subst, Hre left, Hre right)
      : kind_(kind),
        id_(id),
        subst_(subst),
        left_(std::move(left)),
        right_(std::move(right)) {}

  HreKind kind() const { return kind_; }
  /// Symbol id for kTree/kSubstLeaf, variable id for kVariable.
  InternId id() const { return id_; }
  /// Substitution symbol for kSubstLeaf/kEmbed/kVClose.
  hedge::SubstId subst() const { return subst_; }
  const Hre& left() const { return left_; }
  const Hre& right() const { return right_; }

 private:
  HreKind kind_;
  InternId id_;
  hedge::SubstId subst_;
  Hre left_;
  Hre right_;
};

Hre HEmptySet();
Hre HEpsilon();
Hre HVar(hedge::VarId x);
Hre HTree(hedge::SymbolId a, Hre e);
Hre HConcat(Hre e1, Hre e2);
Hre HUnion(Hre e1, Hre e2);
Hre HStar(Hre e);
Hre HSubstLeaf(hedge::SymbolId a, hedge::SubstId z);
Hre HEmbed(Hre e1, hedge::SubstId z, Hre e2);
Hre HVClose(Hre e, hedge::SubstId z);

/// Number of unique AST nodes (expressions are shared DAGs).
size_t HreSize(const Hre& e);

/// Renders in the textual syntax accepted by ParseHre.
std::string HreToString(const Hre& e, const hedge::Vocabulary& vocab);

/// Parses the textual syntax (new names are interned into `vocab`):
///   expr    := union ('@' IDENT union)*        -- left-assoc embedding e1 @z e2
///   union   := cat ('|' cat)*
///   cat     := factor+
///   factor  := atom ('*' | '+' | '?' | '^' IDENT)*   -- '^z' vertical closure
///   atom    := '{}' | '()' | '$' IDENT
///            | IDENT                            -- a, abbreviation of a<()>
///            | IDENT '<' '%' IDENT '>'          -- a<%z> substitution leaf
///            | IDENT '<' expr '>'               -- a<e>
///            | '(' expr ')'
/// The paper's example a<z>^{*z} is written "a<%z>*^z".
Result<Hre> ParseHre(std::string_view text, hedge::Vocabulary& vocab);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_AST_H_
