#include "hre/compile.h"

#include <deque>
#include <unordered_map>

#include "obs/catalogue.h"
#include "obs/obs.h"
#include "strre/ops.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace hedgeq::hre {

using automata::HState;
using automata::Nha;
using strre::Nfa;
using strre::StateId;

namespace {

// Lemma 1 compiler. To keep the construction linear in the expression size
// (the paper's claim, measured by experiment E4), all hedge-automaton
// states live in one accumulator Nha — no renaming or copying when
// subexpressions combine — and all final state sequence languages are
// Thompson fragments inside one shared NFA arena, glued with epsilons in
// O(1) per operator. A fragment is materialized into a standalone content
// NFA only when a rule consumes it (case 4) or a splice needs a copy
// (cases 9 and 10); every arena state is extracted at most once per
// consuming site.
class Compiler {
 public:
  explicit Compiler(BudgetScope& scope, CompileTrace* trace = nullptr)
      : scope_(scope), trace_(trace) {}

  Result<Nha> Compile(const Hre& root) {
    Result<Frag> final_frag = CompileExpr(root);
    if (!final_frag.ok()) return final_frag.status();
    nha_.SetFinal(Extract(*final_frag));
    if (trace_ != nullptr) {
      trace_->total_states = nha_.num_states();
      trace_->total_rules = nha_.rules().size();
    }
    return std::move(nha_);
  }

 private:
  // Thompson fragment in the arena: one entry, one exit, exit has no
  // outgoing edges.
  struct Frag {
    StateId in;
    StateId out;
  };

  Frag NewFrag() { return {arena_.AddState(), arena_.AddState()}; }

  // Records one post-order trace entry around the actual case dispatch, so
  // the certificate sees exactly the accumulator deltas each case caused.
  Result<Frag> CompileExpr(const Hre& e) {
    if (trace_ == nullptr) return CompileCase(e);
    const size_t states_before = nha_.num_states();
    const size_t rules_before = nha_.rules().size();
    Result<Frag> out = CompileCase(e);
    if (out.ok()) {
      trace_->entries.push_back(CompileTraceEntry{
          e->kind(), states_before, nha_.num_states(), rules_before,
          nha_.rules().size()});
    }
    return out;
  }

  Result<Frag> CompileCase(const Hre& e) {
    DepthGuard depth(scope_, "hre/compile");
    HEDGEQ_RETURN_IF_ERROR(depth.status());
    HEDGEQ_RETURN_IF_ERROR(scope_.ChargeSteps(1, "hre/compile"));
    switch (e->kind()) {
      case HreKind::kEmptySet: {  // Case 1: no path from in to out.
        return NewFrag();
      }
      case HreKind::kEpsilon: {  // Case 2
        Frag f = NewFrag();
        arena_.AddEpsilon(f.in, f.out);
        return f;
      }
      case HreKind::kVariable: {  // Case 3
        HState q = nha_.AddState();
        nha_.AddVariableState(e->id(), q);
        return SingleLetter(q);
      }
      case HreKind::kTree: {  // Case 4: a<e1>
        Result<Frag> inner = CompileExpr(e->left());
        if (!inner.ok()) return inner.status();
        HState q2 = nha_.AddState();
        nha_.AddRule(e->id(), Extract(*inner), q2);
        return SingleLetter(q2);
      }
      case HreKind::kConcat: {  // Case 5
        Result<Frag> f1 = CompileExpr(e->left());
        if (!f1.ok()) return f1.status();
        Result<Frag> f2 = CompileExpr(e->right());
        if (!f2.ok()) return f2.status();
        arena_.AddEpsilon(f1->out, f2->in);
        return Frag{f1->in, f2->out};
      }
      case HreKind::kUnion: {  // Case 6
        Result<Frag> f1 = CompileExpr(e->left());
        if (!f1.ok()) return f1.status();
        Result<Frag> f2 = CompileExpr(e->right());
        if (!f2.ok()) return f2.status();
        Frag f = NewFrag();
        arena_.AddEpsilon(f.in, f1->in);
        arena_.AddEpsilon(f.in, f2->in);
        arena_.AddEpsilon(f1->out, f.out);
        arena_.AddEpsilon(f2->out, f.out);
        return f;
      }
      case HreKind::kStar: {  // Case 7
        Result<Frag> f1 = CompileExpr(e->left());
        if (!f1.ok()) return f1.status();
        Frag f = NewFrag();
        arena_.AddEpsilon(f.in, f1->in);
        arena_.AddEpsilon(f.in, f.out);
        arena_.AddEpsilon(f1->out, f1->in);
        arena_.AddEpsilon(f1->out, f.out);
        return f;
      }
      case HreKind::kSubstLeaf: {  // Case 8: a<z>
        HState zbar = nha_.AddState();
        HState q = nha_.AddState();
        nha_.AddSubstState(e->subst(), zbar);
        nha_.AddRule(e->id(), SingleLetterNfa(zbar), q);
        return SingleLetter(q);
      }
      case HreKind::kEmbed: {  // Case 9: e1 o_z e2
        const hedge::SubstId z = e->subst();
        // Compile e2 first and remember which z-bar states and rules it
        // contributed (they are exactly the splice sites).
        size_t z_before = nha_.SubstStates(z).size();
        size_t rules_before = nha_.rules().size();
        Result<Frag> f2 = CompileExpr(e->right());
        if (!f2.ok()) return f2.status();
        size_t z_after = nha_.SubstStates(z).size();
        size_t rules_after = nha_.rules().size();
        Result<Frag> f1 = CompileExpr(e->left());
        if (!f1.ok()) return f1.status();

        // F1 as a standalone NFA for splicing (each splice site gets its
        // own copy inside SpliceLetter).
        Nfa lang = Extract(*f1);

        std::vector<HState> zbars(
            nha_.SubstStates(z).begin() + static_cast<long>(z_before),
            nha_.SubstStates(z).begin() + static_cast<long>(z_after));
        // Q2' = Q2 \ {z-bar}: e2's z leaves are no longer substitutable.
        for (HState zbar : zbars) nha_.RemoveSubstState(z, zbar);
        // (alpha2^{-1}(i,q) \ {z-bar}) union F1, rule-wise.
        for (size_t i = rules_before; i < rules_after; ++i) {
          Nfa content = nha_.rules()[i].content;
          size_t before = content.num_states();
          bool touched = false;
          for (HState zbar : zbars) {
            content = SpliceLetter(content, zbar, lang,
                                   /*keep_original=*/false);
            touched = true;
          }
          HEDGEQ_RETURN_IF_ERROR(ChargeSplice(content.num_states(), before));
          if (touched) nha_.SetRuleContent(i, std::move(content));
        }
        // F2 never mentions z-bar (z-bar states occur only inside content
        // models), so the final fragment carries over unchanged.
        return *f2;
      }
      case HreKind::kVClose: {  // Case 10: e^z
        const hedge::SubstId z = e->subst();
        size_t z_before = nha_.SubstStates(z).size();
        size_t rules_before = nha_.rules().size();
        Result<Frag> f = CompileExpr(e->left());
        if (!f.ok()) return f.status();
        size_t z_after = nha_.SubstStates(z).size();
        size_t rules_after = nha_.rules().size();

        Nfa lang = Extract(*f);
        std::vector<HState> zbars(
            nha_.SubstStates(z).begin() + static_cast<long>(z_before),
            nha_.SubstStates(z).begin() + static_cast<long>(z_after));
        // alpha2^{-1}(i,q) = alpha1^{-1}(i,q) union F1 wherever z-bar leads
        // to q: keep the z-bar transition (a leaf z may remain) and allow a
        // full F1 word; deeper nesting recurses through these same rules.
        for (size_t i = rules_before; i < rules_after; ++i) {
          Nfa content = nha_.rules()[i].content;
          size_t before = content.num_states();
          bool touched = false;
          for (HState zbar : zbars) {
            content =
                SpliceLetter(content, zbar, lang, /*keep_original=*/true);
            touched = true;
          }
          HEDGEQ_RETURN_IF_ERROR(ChargeSplice(content.num_states(), before));
          if (touched) nha_.SetRuleContent(i, std::move(content));
        }
        return *f;
      }
    }
    HEDGEQ_CHECK_MSG(false, "unreachable HreKind");
    return NewFrag();
  }

  // The splice copies of cases 9/10 are the only super-linear growth of the
  // Lemma 1 construction; charge the new NFA states against the budget.
  Status ChargeSplice(size_t after, size_t before) {
    if (after <= before) return Status::Ok();
    size_t added = after - before;
    HEDGEQ_RETURN_IF_ERROR(scope_.ChargeSteps(added, "hre/splice"));
    return scope_.ChargeBytes(added * 32, "hre/splice");
  }

  Frag SingleLetter(HState q) {
    Frag f = NewFrag();
    arena_.AddTransition(f.in, q, f.out);
    return f;
  }

  static Nfa SingleLetterNfa(HState q) {
    Nfa nfa;
    StateId in = nfa.AddState();
    StateId out = nfa.AddState(true);
    nfa.SetStart(in);
    nfa.AddTransition(in, q, out);
    return nfa;
  }

  // Copies the arena subgraph reachable from f.in into a standalone NFA
  // whose only accepting state is (the image of) f.out. Thompson fragments
  // are closed under reachability (exits have no outgoing edges), so this
  // touches only the fragment's own states.
  Nfa Extract(const Frag& f) {
    Nfa out;
    std::unordered_map<StateId, StateId> map;
    std::deque<StateId> worklist;
    auto intern = [&](StateId s) {
      auto it = map.find(s);
      if (it != map.end()) return it->second;
      StateId id = out.AddState(false);
      map.emplace(s, id);
      worklist.push_back(s);
      return id;
    };
    out.SetStart(intern(f.in));
    while (!worklist.empty()) {
      StateId s = worklist.front();
      worklist.pop_front();
      StateId from = map.at(s);
      for (const Nfa::Transition& t : arena_.TransitionsFrom(s)) {
        out.AddTransition(from, t.symbol, intern(t.to));
      }
      for (StateId t : arena_.EpsilonsFrom(s)) {
        out.AddEpsilon(from, intern(t));
      }
    }
    auto it = map.find(f.out);
    if (it != map.end()) out.SetAccepting(it->second, true);
    return out;
  }

  // Replaces transitions on `letter` in `content` by a detour through a
  // fresh copy of `lang`. When keep_original is true the direct transition
  // stays as an alternative (case 10); otherwise it is removed (case 9).
  // Each spliced transition gets its own copy of `lang` so distinct splice
  // points cannot cross over.
  static Nfa SpliceLetter(const Nfa& content, strre::Symbol letter,
                          const Nfa& lang, bool keep_original) {
    Nfa out;
    for (StateId s = 0; s < content.num_states(); ++s) {
      out.AddState(content.IsAccepting(s));
    }
    if (content.start() != strre::kNoState) out.SetStart(content.start());

    auto splice_copy = [&](StateId from, StateId to) {
      StateId offset = static_cast<StateId>(out.num_states());
      for (StateId s = 0; s < lang.num_states(); ++s) out.AddState(false);
      for (StateId s = 0; s < lang.num_states(); ++s) {
        for (const Nfa::Transition& t : lang.TransitionsFrom(s)) {
          out.AddTransition(offset + s, t.symbol, offset + t.to);
        }
        for (StateId t : lang.EpsilonsFrom(s)) {
          out.AddEpsilon(offset + s, offset + t);
        }
        if (lang.IsAccepting(s)) out.AddEpsilon(offset + s, to);
      }
      if (lang.start() != strre::kNoState) {
        out.AddEpsilon(from, offset + lang.start());
      }
    };

    for (StateId s = 0; s < content.num_states(); ++s) {
      for (const Nfa::Transition& t : content.TransitionsFrom(s)) {
        if (t.symbol == letter) {
          if (keep_original) out.AddTransition(s, t.symbol, t.to);
          splice_copy(s, t.to);
        } else {
          out.AddTransition(s, t.symbol, t.to);
        }
      }
      for (StateId t : content.EpsilonsFrom(s)) {
        out.AddEpsilon(s, t);
      }
    }
    return out;
  }

  BudgetScope& scope_;
  CompileTrace* trace_;
  Nha nha_;
  Nfa arena_;
};

}  // namespace

Nha CompileHre(const Hre& e) {
  BudgetScope scope(ExecBudget::Unlimited());
  Compiler compiler(scope);
  Result<Nha> out = compiler.Compile(e);
  HEDGEQ_CHECK_MSG(out.ok(), "unbudgeted CompileHre cannot fail");
  return std::move(out).value();
}

Result<Nha> CompileHre(const Hre& e, BudgetScope& scope) {
  return CompileHre(e, scope, nullptr);
}

Result<Nha> CompileHre(const Hre& e, BudgetScope& scope,
                       CompileTrace* trace) {
  HEDGEQ_FAILPOINT("hre/compile");
  HEDGEQ_OBS_SPAN(span, obs::spans::kHreCompile);
  Compiler compiler(scope, trace);
  Result<Nha> out = compiler.Compile(e);
  if (out.ok() && obs::Enabled()) {
    const size_t ast_nodes = HreSize(e);
    HEDGEQ_OBS_COUNT(obs::metrics::kHreCompileAstNodes, ast_nodes);
    HEDGEQ_OBS_COUNT(obs::metrics::kHreCompileNhaStates, out->num_states());
    HEDGEQ_OBS_COUNT(obs::metrics::kHreCompileNhaRules, out->rules().size());
    span.AddArg("ast_nodes", ast_nodes);
    span.AddArg("nha_states", out->num_states());
    span.AddArg("nha_rules", out->rules().size());
  }
  return out;
}

bool HreMatches(const Hre& e, const hedge::Hedge& h) {
  return CompileHre(e).Accepts(h);
}

}  // namespace hedgeq::hre
