#include "hre/ast.h"

#include <cctype>
#include <unordered_set>

#include "util/strings.h"

namespace hedgeq::hre {

namespace {

Hre Make(HreKind kind, InternId id, hedge::SubstId subst, Hre left,
         Hre right) {
  return std::make_shared<const HreNode>(kind, id, subst, std::move(left),
                                         std::move(right));
}

}  // namespace

Hre HEmptySet() {
  static const Hre kEmpty = Make(HreKind::kEmptySet, 0, 0, nullptr, nullptr);
  return kEmpty;
}

Hre HEpsilon() {
  static const Hre kEps = Make(HreKind::kEpsilon, 0, 0, nullptr, nullptr);
  return kEps;
}

Hre HVar(hedge::VarId x) {
  return Make(HreKind::kVariable, x, 0, nullptr, nullptr);
}

Hre HTree(hedge::SymbolId a, Hre e) {
  return Make(HreKind::kTree, a, 0, std::move(e), nullptr);
}

Hre HConcat(Hre e1, Hre e2) {
  if (e1->kind() == HreKind::kEmptySet || e2->kind() == HreKind::kEmptySet)
    return HEmptySet();
  if (e1->kind() == HreKind::kEpsilon) return e2;
  if (e2->kind() == HreKind::kEpsilon) return e1;
  return Make(HreKind::kConcat, 0, 0, std::move(e1), std::move(e2));
}

Hre HUnion(Hre e1, Hre e2) {
  if (e1->kind() == HreKind::kEmptySet) return e2;
  if (e2->kind() == HreKind::kEmptySet) return e1;
  return Make(HreKind::kUnion, 0, 0, std::move(e1), std::move(e2));
}

Hre HStar(Hre e) {
  if (e->kind() == HreKind::kEmptySet || e->kind() == HreKind::kEpsilon)
    return HEpsilon();
  if (e->kind() == HreKind::kStar) return e;
  return Make(HreKind::kStar, 0, 0, std::move(e), nullptr);
}

Hre HSubstLeaf(hedge::SymbolId a, hedge::SubstId z) {
  return Make(HreKind::kSubstLeaf, a, z, nullptr, nullptr);
}

Hre HEmbed(Hre e1, hedge::SubstId z, Hre e2) {
  return Make(HreKind::kEmbed, 0, z, std::move(e1), std::move(e2));
}

Hre HVClose(Hre e, hedge::SubstId z) {
  return Make(HreKind::kVClose, 0, z, std::move(e), nullptr);
}

namespace {

void CountNodes(const Hre& e, std::unordered_set<const HreNode*>& seen) {
  if (e == nullptr || !seen.insert(e.get()).second) return;
  CountNodes(e->left(), seen);
  CountNodes(e->right(), seen);
}

}  // namespace

size_t HreSize(const Hre& e) {
  // Expressions are shared DAGs (the parser reuses subtrees for e+, and
  // Lemma 2 memoizes aggressively); count unique nodes so the size reflects
  // actual memory rather than the unfolded tree.
  std::unordered_set<const HreNode*> seen;
  CountNodes(e, seen);
  return seen.size();
}

namespace {

// Precedence: embed(0) < union(1) < concat(2) < postfix(3).
std::string ToStringPrec(const Hre& e, const hedge::Vocabulary& vocab,
                         int parent_prec) {
  int prec = 3;
  std::string body;
  switch (e->kind()) {
    case HreKind::kEmptySet:
      return "{}";
    case HreKind::kEpsilon:
      return "()";
    case HreKind::kVariable:
      return "$" + vocab.variables.NameOf(e->id());
    case HreKind::kTree:
      if (e->left()->kind() == HreKind::kEpsilon) {
        return vocab.symbols.NameOf(e->id());
      }
      return vocab.symbols.NameOf(e->id()) + "<" +
             ToStringPrec(e->left(), vocab, 0) + ">";
    case HreKind::kSubstLeaf:
      return vocab.symbols.NameOf(e->id()) + "<%" +
             vocab.substs.NameOf(e->subst()) + ">";
    // Union and concat parse left-associative, so a right child at the same
    // precedence needs parentheses to round-trip structurally — "a|(b|c)"
    // re-parses as the right-nested tree it printed from, while "a|b|c"
    // would re-associate leftward. Structural round-tripping is what lets
    // certificate replay (verify::CheckFromNha) compare re-parsed witness
    // expressions node-for-node.
    case HreKind::kConcat:
      prec = 2;
      body = ToStringPrec(e->left(), vocab, prec) + " " +
             ToStringPrec(e->right(), vocab, prec + 1);
      break;
    case HreKind::kUnion:
      prec = 1;
      body = ToStringPrec(e->left(), vocab, prec) + "|" +
             ToStringPrec(e->right(), vocab, prec + 1);
      break;
    case HreKind::kStar:
      prec = 3;
      body = ToStringPrec(e->left(), vocab, prec) + "*";
      break;
    case HreKind::kVClose:
      prec = 3;
      body = ToStringPrec(e->left(), vocab, prec) + "^" +
             vocab.substs.NameOf(e->subst());
      break;
    case HreKind::kEmbed:
      prec = 0;
      body = ToStringPrec(e->left(), vocab, prec + 1) + " @" +
             vocab.substs.NameOf(e->subst()) + " " +
             ToStringPrec(e->right(), vocab, prec + 1);
      break;
  }
  if (prec < parent_prec) return "(" + body + ")";
  return body;
}

class HreParser {
 public:
  HreParser(std::string_view text, hedge::Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<Hre> Parse() {
    Result<Hre> e = ParseEmbed();
    if (!e.ok()) return e;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(StrCat("unexpected character '",
                                            text_[pos_], "' at offset ", pos_,
                                            " in expression: ", text_));
    }
    return e;
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-' || c == '#';
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == ')' || c == '>' || c == '|' || c == '@') return false;
    return IsIdentChar(c) || c == '(' || c == '{' || c == '$';
  }

  // Parenthesized atoms re-enter ParseEmbed, so expression nesting maps to
  // native stack depth; bound it so "((((...))))" bombs fail cleanly. 512 holds
  // comfortably within an 8 MiB stack even under ASan's inflated frames
  // (~5 parser frames per nesting level).
  static constexpr size_t kMaxNesting = 512;

  Result<Hre> ParseEmbed() {
    if (depth_ >= kMaxNesting) {
      return Status::ResourceExhausted(
          StrCat("expression nesting deeper than ", kMaxNesting,
                 " at offset ", pos_));
    }
    ++depth_;
    Result<Hre> out = ParseEmbedImpl();
    --depth_;
    return out;
  }

  Result<Hre> ParseEmbedImpl() {
    Result<Hre> left = ParseUnion();
    if (!left.ok()) return left;
    Hre out = std::move(left).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '@') {
        ++pos_;
        std::string z;
        HEDGEQ_RETURN_IF_ERROR(ParseIdent(z));
        Result<Hre> right = ParseUnion();
        if (!right.ok()) return right;
        // e1 @z e2 embeds e1 into e2 at z.
        out = HEmbed(std::move(out), vocab_.substs.Intern(z),
                     std::move(right).value());
      } else {
        break;
      }
    }
    return out;
  }

  Result<Hre> ParseUnion() {
    Result<Hre> left = ParseConcat();
    if (!left.ok()) return left;
    Hre out = std::move(left).value();
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        Result<Hre> right = ParseConcat();
        if (!right.ok()) return right;
        out = HUnion(std::move(out), std::move(right).value());
      } else {
        break;
      }
    }
    return out;
  }

  Result<Hre> ParseConcat() {
    Hre out = HEpsilon();
    bool any = false;
    while (AtAtomStart()) {
      Result<Hre> f = ParseFactor();
      if (!f.ok()) return f;
      out = HConcat(std::move(out), std::move(f).value());
      any = true;
    }
    if (!any) {
      return Status::InvalidArgument(
          StrCat("expected an atom at offset ", pos_, " in: ", text_));
    }
    return out;
  }

  Result<Hre> ParseFactor() {
    Result<Hre> atom = ParseAtom();
    if (!atom.ok()) return atom;
    Hre out = std::move(atom).value();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '*') {
        out = HStar(std::move(out));
        ++pos_;
      } else if (c == '+') {
        out = HConcat(out, HStar(out));
        ++pos_;
      } else if (c == '?') {
        out = HUnion(std::move(out), HEpsilon());
        ++pos_;
      } else if (c == '^') {
        ++pos_;
        std::string z;
        HEDGEQ_RETURN_IF_ERROR(ParseIdent(z));
        out = HVClose(std::move(out), vocab_.substs.Intern(z));
      } else {
        break;
      }
    }
    return out;
  }

  Result<Hre> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of expression");
    }
    char c = text_[pos_];
    if (c == '{') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '}') {
        pos_ += 2;
        return HEmptySet();
      }
      return Status::InvalidArgument(
          StrCat("expected '{}' at offset ", pos_, " in: ", text_));
    }
    if (c == '$') {
      ++pos_;
      std::string x;
      HEDGEQ_RETURN_IF_ERROR(ParseIdent(x));
      return HVar(vocab_.variables.Intern(x));
    }
    if (c == '(') {
      size_t look = pos_ + 1;
      while (look < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[look]))) {
        ++look;
      }
      if (look < text_.size() && text_[look] == ')') {
        pos_ = look + 1;
        return HEpsilon();
      }
      ++pos_;
      Result<Hre> inner = ParseEmbed();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument(
            StrCat("missing ')' at offset ", pos_, " in: ", text_));
      }
      ++pos_;
      return inner;
    }
    if (IsIdentChar(c)) {
      std::string name;
      HEDGEQ_RETURN_IF_ERROR(ParseIdent(name));
      hedge::SymbolId a = vocab_.symbols.Intern(name);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '<') {
        ++pos_;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == '%') {
          ++pos_;
          std::string z;
          HEDGEQ_RETURN_IF_ERROR(ParseIdent(z));
          SkipSpace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return Status::InvalidArgument(
                StrCat("missing '>' at offset ", pos_, " in: ", text_));
          }
          ++pos_;
          return HSubstLeaf(a, vocab_.substs.Intern(z));
        }
        if (pos_ < text_.size() && text_[pos_] == '>') {
          ++pos_;
          return HTree(a, HEpsilon());
        }
        Result<Hre> inner = ParseEmbed();
        if (!inner.ok()) return inner;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::InvalidArgument(
              StrCat("missing '>' at offset ", pos_, " in: ", text_));
        }
        ++pos_;
        return HTree(a, std::move(inner).value());
      }
      return HTree(a, HEpsilon());
    }
    return Status::InvalidArgument(StrCat("unexpected character '", c,
                                          "' at offset ", pos_,
                                          " in: ", text_));
  }

  Status ParseIdent(std::string& out) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::InvalidArgument(
          StrCat("expected an identifier at offset ", pos_, " in: ", text_));
    }
    out = std::string(text_.substr(start, pos_ - start));
    return Status::Ok();
  }

  std::string_view text_;
  hedge::Vocabulary& vocab_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

std::string HreToString(const Hre& e, const hedge::Vocabulary& vocab) {
  return ToStringPrec(e, vocab, 0);
}

Result<Hre> ParseHre(std::string_view text, hedge::Vocabulary& vocab) {
  HreParser parser(text, vocab);
  return parser.Parse();
}

}  // namespace hedgeq::hre
