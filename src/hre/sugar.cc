#include "hre/sugar.h"

namespace hedgeq::hre {

Hre AnyHedgeExpr(std::span<const hedge::SymbolId> symbols,
                 std::span<const hedge::VarId> variables, hedge::SubstId z) {
  Hre alternatives = HEmptySet();
  for (hedge::SymbolId a : symbols) {
    alternatives = HUnion(std::move(alternatives), HSubstLeaf(a, z));
  }
  for (hedge::VarId x : variables) {
    alternatives = HUnion(std::move(alternatives), HVar(x));
  }
  return HVClose(HStar(std::move(alternatives)), z);
}

Hre AnyTreeExpr(hedge::SymbolId a, std::span<const hedge::SymbolId> symbols,
                std::span<const hedge::VarId> variables, hedge::SubstId z) {
  return HEmbed(AnyHedgeExpr(symbols, variables, z), z, HSubstLeaf(a, z));
}

Hre AnyTreeOfExpr(std::span<const hedge::SymbolId> labels,
                  std::span<const hedge::SymbolId> symbols,
                  std::span<const hedge::VarId> variables, hedge::SubstId z) {
  Hre out = HEmptySet();
  for (hedge::SymbolId a : labels) {
    out = HUnion(std::move(out), AnyTreeExpr(a, symbols, variables, z));
  }
  return out;
}

}  // namespace hedgeq::hre
