#ifndef HEDGEQ_HRE_FROM_NHA_H_
#define HEDGEQ_HRE_FROM_NHA_H_

#include "automata/nha.h"
#include "hre/ast.h"

namespace hedgeq::hre {

/// Lemma 2: constructs a hedge regular expression denoting L(nha),
/// completing Theorem 2 (hedge regular expressions and hedge automata are
/// equally expressive).
///
/// Follows the paper's decomposition: states are first split per producing
/// symbol so every connector node has a unique label zeta(q); hedges are
/// then cut at state occurrences, with R(q, Q1, Q2) — hedges whose internal
/// nodes use states in Q1 and whose connectors use states in Q2 — computed
/// by the three-equation recursion over |Q1| (embedding for the top/bottom
/// split, vertical closure for repeated middles).
///
/// One fresh substitution symbol per split state ("_zq<i>") is interned
/// into `vocab`. The construction is worst-case doubly exponential in
/// automaton size (the price of expression-ness); a cap of 62 split states
/// is enforced (kResourceExhausted beyond, kInvalidArgument for automata
/// with substitution-symbol states, whose languages need bare-z hedges that
/// expressions cannot denote).
Result<Hre> NhaToHre(const automata::Nha& nha, hedge::Vocabulary& vocab);

/// Structural translation of a string regex into an HRE via a leaf mapping
/// (exposed for reuse and tests).
Hre RegexToHre(const strre::Regex& regex,
               const std::function<Hre(strre::Symbol)>& leaf);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_FROM_NHA_H_
