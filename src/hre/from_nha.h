#ifndef HEDGEQ_HRE_FROM_NHA_H_
#define HEDGEQ_HRE_FROM_NHA_H_

#include <functional>
#include <utility>
#include <vector>

#include "automata/nha.h"
#include "hre/ast.h"

namespace hedgeq::hre {

/// Witness of one NhaToHre run: the split-state table and every memoized
/// intermediate of the R(q, Q1, Q2) state-elimination recurrence, in fill
/// order (sub-entries always precede the entries combining them). The
/// checker (verify::CheckFromNha, HQV014) replays each recursive
/// combination structurally and recompiles the emitted expression through
/// the independent Lemma 1 pipeline.
struct FromNhaWitness {
  /// Split states in enumeration order: (producing symbol, target state).
  std::vector<std::pair<hedge::SymbolId, automata::HState>> splits;
  /// The fresh substitution symbol minted for each split ("_zq<i>").
  std::vector<hedge::SubstId> substs;
  struct Entry {
    uint32_t c = 0;   // split index the entry denotes hedges for
    uint64_t q1 = 0;  // internal-state mask (bit i = splits[i])
    uint64_t q2 = 0;  // connector-state mask
    Hre expr;
  };
  std::vector<Entry> entries;
  /// The expression NhaToHre returned (== the overload's result).
  Hre result;
};

/// Lemma 2: constructs a hedge regular expression denoting L(nha),
/// completing Theorem 2 (hedge regular expressions and hedge automata are
/// equally expressive).
///
/// Follows the paper's decomposition: states are first split per producing
/// symbol so every connector node has a unique label zeta(q); hedges are
/// then cut at state occurrences, with R(q, Q1, Q2) — hedges whose internal
/// nodes use states in Q1 and whose connectors use states in Q2 — computed
/// by the three-equation recursion over |Q1| (embedding for the top/bottom
/// split, vertical closure for repeated middles).
///
/// One fresh substitution symbol per split state ("_zq<i>") is interned
/// into `vocab`. The construction is worst-case doubly exponential in
/// automaton size (the price of expression-ness); a cap of 62 split states
/// is enforced (kResourceExhausted beyond, kInvalidArgument for automata
/// with substitution-symbol states, whose languages need bare-z hedges that
/// expressions cannot denote).
Result<Hre> NhaToHre(const automata::Nha& nha, hedge::Vocabulary& vocab);

/// As above, additionally filling `witness` (ignored when null) with the
/// recurrence intermediates for translation validation.
Result<Hre> NhaToHre(const automata::Nha& nha, hedge::Vocabulary& vocab,
                     FromNhaWitness* witness);

/// Structural translation of a string regex into an HRE via a leaf mapping
/// (exposed for reuse and tests).
Hre RegexToHre(const strre::Regex& regex,
               const std::function<Hre(strre::Symbol)>& leaf);

/// Inline-certification hook: when installed (HEDGEQ_CERTIFY), every
/// NhaToHre validates its own witness before returning; a non-ok status
/// propagates to the caller. Installed by hedgeq_inline_certify; the
/// pointer lives here so hre does not depend on the checker.
using FromNhaValidationHook = Status (*)(const automata::Nha& input,
                                         const Hre& output,
                                         const FromNhaWitness&);
void SetFromNhaValidationHook(FromNhaValidationHook hook);
FromNhaValidationHook GetFromNhaValidationHook();

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_FROM_NHA_H_
