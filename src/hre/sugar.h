#ifndef HEDGEQ_HRE_SUGAR_H_
#define HEDGEQ_HRE_SUGAR_H_

#include <span>

#include "hre/ast.h"

namespace hedgeq::hre {

/// Building blocks for common "don't care" conditions. Hedge regular
/// expressions describe complete subtree structure, so a sibling condition
/// like "the next sibling is a caption" needs an explicit "and then
/// anything" tail; these helpers construct that "anything" over a concrete
/// vocabulary.

/// Every hedge (including the empty one) whose symbols come from `symbols`
/// and whose leaf variables come from `variables`:
///   ((a1<z>|...|ak<z>|x1|...|xm)*)^z
Hre AnyHedgeExpr(std::span<const hedge::SymbolId> symbols,
                 std::span<const hedge::VarId> variables, hedge::SubstId z);

/// Exactly one tree: labeled `a` with arbitrary content over the
/// vocabulary. Built as AnyHedgeExpr embedded into a<z>.
Hre AnyTreeExpr(hedge::SymbolId a, std::span<const hedge::SymbolId> symbols,
                std::span<const hedge::VarId> variables, hedge::SubstId z);

/// Exactly one tree with any label from `labels` and arbitrary content over
/// the vocabulary (union of AnyTreeExpr).
Hre AnyTreeOfExpr(std::span<const hedge::SymbolId> labels,
                  std::span<const hedge::SymbolId> symbols,
                  std::span<const hedge::VarId> variables, hedge::SubstId z);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_SUGAR_H_
