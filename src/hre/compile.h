#ifndef HEDGEQ_HRE_COMPILE_H_
#define HEDGEQ_HRE_COMPILE_H_

#include "automata/nha.h"
#include "hre/ast.h"

namespace hedgeq::hre {

/// Lemma 1: constructs a non-deterministic hedge automaton M(e) with
/// L(M(e)) = L(e). The construction follows the paper's ten cases; the
/// states z-bar introduced for substitution symbols appear in iota (as
/// substitution-state entries) and inside content models, never in final
/// state sequences. Linear in the size of the expression.
automata::Nha CompileHre(const Hre& e);

/// Membership test by compiling once and simulating (Definition 12
/// semantics). Convenience for tests and small inputs; reuse the Nha from
/// CompileHre when matching many hedges.
bool HreMatches(const Hre& e, const hedge::Hedge& h);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_COMPILE_H_
