#ifndef HEDGEQ_HRE_COMPILE_H_
#define HEDGEQ_HRE_COMPILE_H_

#include "automata/nha.h"
#include "hre/ast.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::hre {

/// Lemma 1: constructs a non-deterministic hedge automaton M(e) with
/// L(M(e)) = L(e). The construction follows the paper's ten cases; the
/// states z-bar introduced for substitution symbols appear in iota (as
/// substitution-state entries) and inside content models, never in final
/// state sequences. Linear in the size of the expression — except for the
/// splice copies of cases 9/10, which the budgeted overload charges against
/// the scope (along with AST recursion depth), returning kResourceExhausted
/// instead of overrunning on adversarial expressions.
automata::Nha CompileHre(const Hre& e);

/// Budget-aware form for pipelines that share one cumulative BudgetScope
/// (query::CompilePhr, query::SelectionEvaluator::Create).
Result<automata::Nha> CompileHre(const Hre& e, BudgetScope& scope);

/// Membership test by compiling once and simulating (Definition 12
/// semantics). Convenience for tests and small inputs; reuse the Nha from
/// CompileHre when matching many hedges.
bool HreMatches(const Hre& e, const hedge::Hedge& h);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_COMPILE_H_
