#ifndef HEDGEQ_HRE_COMPILE_H_
#define HEDGEQ_HRE_COMPILE_H_

#include "automata/nha.h"
#include "hre/ast.h"
#include "util/budget.h"
#include "util/status.h"

namespace hedgeq::hre {

/// Lemma 1: constructs a non-deterministic hedge automaton M(e) with
/// L(M(e)) = L(e). The construction follows the paper's ten cases; the
/// states z-bar introduced for substitution symbols appear in iota (as
/// substitution-state entries) and inside content models, never in final
/// state sequences. Linear in the size of the expression — except for the
/// splice copies of cases 9/10, which the budgeted overload charges against
/// the scope (along with AST recursion depth), returning kResourceExhausted
/// instead of overrunning on adversarial expressions.
automata::Nha CompileHre(const Hre& e);

/// Budget-aware form for pipelines that share one cumulative BudgetScope
/// (query::CompilePhr, query::SelectionEvaluator::Create).
Result<automata::Nha> CompileHre(const Hre& e, BudgetScope& scope);

/// One compiled subexpression in post-order: the accumulator-Nha state and
/// rule counts observed on entry and on exit of its Lemma 1 case. The
/// independent checker (verify::CheckCompile) replays the per-case
/// accounting — case 3 adds one state, case 4 one state and one rule,
/// case 8 two states and one rule, every other case only what its children
/// added — and rejects any trace whose arithmetic does not close.
struct CompileTraceEntry {
  HreKind kind;
  size_t states_before = 0;
  size_t states_after = 0;
  size_t rules_before = 0;
  size_t rules_after = 0;
};

/// Certificate of one Lemma 1 compile: the post-order case trace plus the
/// output totals.
struct CompileTrace {
  std::vector<CompileTraceEntry> entries;
  size_t total_states = 0;
  size_t total_rules = 0;
};

/// As the budgeted overload, additionally recording the compile certificate
/// into `trace` (ignored when null).
Result<automata::Nha> CompileHre(const Hre& e, BudgetScope& scope,
                                 CompileTrace* trace);

/// Membership test by compiling once and simulating (Definition 12
/// semantics). Convenience for tests and small inputs; reuse the Nha from
/// CompileHre when matching many hedges.
bool HreMatches(const Hre& e, const hedge::Hedge& h);

}  // namespace hedgeq::hre

#endif  // HEDGEQ_HRE_COMPILE_H_
