#ifndef HEDGEQ_BASELINE_XPATH_H_
#define HEDGEQ_BASELINE_XPATH_H_

#include <memory>
#include <string>
#include <vector>

#include "hedge/hedge.h"
#include "util/status.h"

namespace hedgeq::baseline {

/// The industrial comparator of the paper's related work (Section 2): an
/// XPath 1.0 subset over hedges. Supported: the nine core axes, name tests,
/// '*', text(), node(), abbreviated steps (., .., //, bare names), and
/// predicates that are either relative paths (existence) or integer
/// positions (with proper reverse-axis numbering).

enum class Axis {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

/// What a step's node test accepts.
enum class NodeTest {
  kName,      // a specific element name
  kAnyElement,  // *
  kText,      // text()
  kAnyNode,   // node()
};

struct Step;

/// A location path: /a/b or relative a/b.
struct PathExpr {
  bool absolute = false;
  std::vector<Step> steps;
};

/// One predicate: [path] (existence) or [n] (position).
struct Predicate {
  // Exactly one of the two is meaningful; path predicates own a PathExpr.
  std::shared_ptr<const PathExpr> path;
  int position = 0;  // 1-based; 0 means "not a position predicate"
};

struct Step {
  Axis axis = Axis::kChild;
  NodeTest test = NodeTest::kName;
  hedge::SymbolId name = 0;  // for kName
  std::vector<Predicate> predicates;
};

/// Parses the XPath subset. Grammar (abbreviations expanded as in XPath 1.0):
///   path      := '/'? step ('/' step | '//' step)*
///   step      := (axis '::')? nodetest predicate*  |  '.'  |  '..'
///   nodetest  := NAME | '*' | 'text()' | 'node()'
///   predicate := '[' (path | INTEGER) ']'
///   axis      := child|descendant|descendant-or-self|self|parent|ancestor|
///                ancestor-or-self|following-sibling|preceding-sibling
Result<PathExpr> ParseXPath(std::string_view text, hedge::Vocabulary& vocab);

/// Evaluates the path with the document node as context (for absolute and
/// relative paths alike), returning the node-set in document order.
std::vector<hedge::NodeId> EvaluateXPath(const hedge::Hedge& doc,
                                         const PathExpr& path);

/// Renders a parsed path back to XPath syntax.
std::string XPathToString(const PathExpr& path,
                          const hedge::Vocabulary& vocab);

}  // namespace hedgeq::baseline

#endif  // HEDGEQ_BASELINE_XPATH_H_
