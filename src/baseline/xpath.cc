#include "baseline/xpath.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"
#include "util/strings.h"

namespace hedgeq::baseline {

using hedge::Hedge;
using hedge::kNullNode;
using hedge::LabelKind;
using hedge::NodeId;

namespace {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild:
      return "child";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kSelf:
      return "self";
    case Axis::kParent:
      return "parent";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
  }
  return "?";
}

class XPathParser {
 public:
  XPathParser(std::string_view text, hedge::Vocabulary& vocab)
      : text_(text), vocab_(vocab) {}

  Result<PathExpr> Parse() {
    Result<PathExpr> p = ParsePath();
    if (!p.ok()) return p;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(StrCat("unexpected character '",
                                            text_[pos_], "' at offset ", pos_,
                                            " in XPath: ", text_));
    }
    return p;
  }

  Result<PathExpr> ParsePath() {
    PathExpr path;
    SkipSpace();
    if (Peek("//")) {
      path.absolute = true;
      pos_ += 2;
      path.steps.push_back(DescendantOrSelfNode());
    } else if (Peek("/")) {
      path.absolute = true;
      ++pos_;
    }
    Result<Step> first = ParseStep();
    if (!first.ok()) return first.status();
    path.steps.push_back(std::move(first).value());
    while (true) {
      SkipSpace();
      if (Peek("//")) {
        pos_ += 2;
        path.steps.push_back(DescendantOrSelfNode());
      } else if (Peek("/")) {
        ++pos_;
      } else {
        break;
      }
      Result<Step> step = ParseStep();
      if (!step.ok()) return step.status();
      path.steps.push_back(std::move(step).value());
    }
    return path;
  }

 private:
  static Step DescendantOrSelfNode() {
    Step s;
    s.axis = Axis::kDescendantOrSelf;
    s.test = NodeTest::kAnyNode;
    return s;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) const {
    return StartsWith(text_.substr(pos_), token);
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-' || c == '@';
  }

  Result<Step> ParseStep() {
    SkipSpace();
    Step step;
    if (Peek("..")) {
      pos_ += 2;
      step.axis = Axis::kParent;
      step.test = NodeTest::kAnyNode;
      return step;
    }
    if (Peek(".")) {
      ++pos_;
      step.axis = Axis::kSelf;
      step.test = NodeTest::kAnyNode;
      return step;
    }

    // Optional explicit axis.
    size_t save = pos_;
    std::string word = ReadWord();
    if (Peek("::")) {
      pos_ += 2;
      bool found = false;
      for (Axis axis :
           {Axis::kChild, Axis::kDescendant, Axis::kDescendantOrSelf,
            Axis::kSelf, Axis::kParent, Axis::kAncestor, Axis::kAncestorOrSelf,
            Axis::kFollowingSibling, Axis::kPrecedingSibling}) {
        if (word == AxisName(axis)) {
          step.axis = axis;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(StrCat("unknown axis '", word, "'"));
      }
    } else {
      pos_ = save;  // no axis; default child
      step.axis = Axis::kChild;
    }

    // Node test.
    SkipSpace();
    if (Peek("*")) {
      ++pos_;
      step.test = NodeTest::kAnyElement;
    } else {
      std::string name = ReadWord();
      if (name.empty()) {
        return Status::InvalidArgument(
            StrCat("expected a node test at offset ", pos_, " in: ", text_));
      }
      if (Peek("()")) {
        pos_ += 2;
        if (name == "text") {
          step.test = NodeTest::kText;
        } else if (name == "node") {
          step.test = NodeTest::kAnyNode;
        } else {
          return Status::InvalidArgument(
              StrCat("unsupported node-type test ", name, "()"));
        }
      } else {
        step.test = NodeTest::kName;
        step.name = vocab_.symbols.Intern(name);
      }
    }

    // Predicates.
    while (true) {
      SkipSpace();
      if (!Peek("[")) break;
      ++pos_;
      SkipSpace();
      Predicate pred;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        int value = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          value = value * 10 + (text_[pos_++] - '0');
        }
        if (value < 1) {
          return Status::InvalidArgument("positions are 1-based");
        }
        pred.position = value;
      } else {
        Result<PathExpr> inner = ParsePath();
        if (!inner.ok()) return inner.status();
        pred.path =
            std::make_shared<const PathExpr>(std::move(inner).value());
      }
      SkipSpace();
      if (!Peek("]")) {
        return Status::InvalidArgument(
            StrCat("missing ']' at offset ", pos_, " in: ", text_));
      }
      ++pos_;
      step.predicates.push_back(std::move(pred));
    }
    return step;
  }

  std::string ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  hedge::Vocabulary& vocab_;
  size_t pos_ = 0;
};

class Evaluator {
 public:
  explicit Evaluator(const Hedge& doc) : doc_(doc) {}

  // Context kNullNode denotes the document node (parent of the top-level
  // sequence).
  std::vector<NodeId> EvaluatePath(const PathExpr& path,
                                   std::vector<NodeId> context) {
    for (const Step& step : path.steps) {
      std::vector<NodeId> result;
      for (NodeId ctx : context) {
        std::vector<NodeId> candidates = AxisNodes(step.axis, ctx);
        // Node-test filter, preserving axis order.
        std::vector<NodeId> filtered;
        for (NodeId n : candidates) {
          if (PassesTest(step, n)) filtered.push_back(n);
        }
        // Predicates filter one at a time with positions within the
        // current list (axis order = proximity order, as in XPath 1.0).
        for (const Predicate& pred : step.predicates) {
          std::vector<NodeId> kept;
          for (size_t i = 0; i < filtered.size(); ++i) {
            if (pred.position > 0) {
              if (static_cast<int>(i) + 1 == pred.position) {
                kept.push_back(filtered[i]);
              }
            } else {
              if (!EvaluatePath(*pred.path, {filtered[i]}).empty()) {
                kept.push_back(filtered[i]);
              }
            }
          }
          filtered = std::move(kept);
        }
        result.insert(result.end(), filtered.begin(), filtered.end());
      }
      // Document order + dedupe. Arena ids are document order for parsed
      // documents (nodes are appended in document order).
      std::sort(result.begin(), result.end());
      result.erase(std::unique(result.begin(), result.end()), result.end());
      context = std::move(result);
    }
    return context;
  }

 private:
  bool PassesTest(const Step& step, NodeId n) const {
    if (n == kNullNode) return step.test == NodeTest::kAnyNode;
    const hedge::Label label = doc_.label(n);
    switch (step.test) {
      case NodeTest::kAnyNode:
        return true;
      case NodeTest::kText:
        return label.kind == LabelKind::kVariable;
      case NodeTest::kAnyElement:
        return label.kind == LabelKind::kSymbol;
      case NodeTest::kName:
        return label.kind == LabelKind::kSymbol && label.id == step.name;
    }
    return false;
  }

  // Candidates in axis order (proximity order for reverse axes).
  std::vector<NodeId> AxisNodes(Axis axis, NodeId ctx) const {
    std::vector<NodeId> out;
    switch (axis) {
      case Axis::kChild:
        out = doc_.ChildrenOf(ctx);
        break;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf: {
        // The document node itself participates in descendant-or-self (it
        // only ever passes the node() test); this is what makes '//'
        // reach top-level elements.
        if (axis == Axis::kDescendantOrSelf) out.push_back(ctx);
        std::vector<NodeId> stack = doc_.ChildrenOf(ctx);
        std::reverse(stack.begin(), stack.end());
        while (!stack.empty()) {
          NodeId n = stack.back();
          stack.pop_back();
          out.push_back(n);
          std::vector<NodeId> kids = doc_.ChildrenOf(n);
          for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
            stack.push_back(*it);
          }
        }
        break;
      }
      case Axis::kSelf:
        if (ctx != kNullNode) out.push_back(ctx);
        break;
      case Axis::kParent:
        if (ctx != kNullNode && doc_.parent(ctx) != kNullNode) {
          out.push_back(doc_.parent(ctx));
        }
        break;
      case Axis::kAncestor:
      case Axis::kAncestorOrSelf: {
        if (ctx == kNullNode) break;
        if (axis == Axis::kAncestorOrSelf) out.push_back(ctx);
        for (NodeId p = doc_.parent(ctx); p != kNullNode; p = doc_.parent(p)) {
          out.push_back(p);  // proximity order: nearest ancestor first
        }
        break;
      }
      case Axis::kFollowingSibling: {
        if (ctx == kNullNode) break;
        for (NodeId s = doc_.next_sibling(ctx); s != kNullNode;
             s = doc_.next_sibling(s)) {
          out.push_back(s);
        }
        break;
      }
      case Axis::kPrecedingSibling: {
        if (ctx == kNullNode) break;
        for (NodeId s = doc_.prev_sibling(ctx); s != kNullNode;
             s = doc_.prev_sibling(s)) {
          out.push_back(s);  // proximity order: nearest first
        }
        break;
      }
    }
    return out;
  }

  const Hedge& doc_;
};

}  // namespace

Result<PathExpr> ParseXPath(std::string_view text, hedge::Vocabulary& vocab) {
  XPathParser parser(text, vocab);
  return parser.Parse();
}

std::vector<NodeId> EvaluateXPath(const Hedge& doc, const PathExpr& path) {
  Evaluator evaluator(doc);
  return evaluator.EvaluatePath(path, {kNullNode});
}

std::string XPathToString(const PathExpr& path,
                          const hedge::Vocabulary& vocab) {
  std::string out = path.absolute ? "/" : "";
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    if (i > 0) out += "/";
    out += AxisName(step.axis);
    out += "::";
    switch (step.test) {
      case NodeTest::kName:
        out += vocab.symbols.NameOf(step.name);
        break;
      case NodeTest::kAnyElement:
        out += "*";
        break;
      case NodeTest::kText:
        out += "text()";
        break;
      case NodeTest::kAnyNode:
        out += "node()";
        break;
    }
    for (const Predicate& pred : step.predicates) {
      out += "[";
      if (pred.position > 0) {
        out += StrCat(pred.position);
      } else {
        out += XPathToString(*pred.path, vocab);
      }
      out += "]";
    }
  }
  return out;
}

}  // namespace hedgeq::baseline
