#include "baseline/translate.h"

#include "strre/regex.h"

namespace hedgeq::baseline {

using query::SelectionQuery;

Result<SelectionQuery> TranslateXPath(
    const PathExpr& path, std::span<const hedge::SymbolId> alphabet) {
  // Triplet alphabet: one unconditional path step per element name; index
  // of symbol i is i.
  std::vector<phr::PointedBaseRep> triplets;
  triplets.reserve(alphabet.size());
  for (hedge::SymbolId s : alphabet) {
    triplets.push_back({nullptr, s, nullptr});
  }
  auto step_regex = [&](const Step& step) -> Result<strre::Regex> {
    switch (step.test) {
      case NodeTest::kName: {
        for (size_t i = 0; i < alphabet.size(); ++i) {
          if (alphabet[i] == step.name) {
            return strre::Sym(static_cast<strre::Symbol>(i));
          }
        }
        // A name outside the alphabet matches nothing.
        return strre::EmptySet();
      }
      case NodeTest::kAnyElement: {
        std::vector<strre::Regex> alts;
        for (size_t i = 0; i < alphabet.size(); ++i) {
          alts.push_back(strre::Sym(static_cast<strre::Symbol>(i)));
        }
        return strre::AltAll(alts);
      }
      case NodeTest::kText:
      case NodeTest::kAnyNode:
        return Status::InvalidArgument(
            "only element node tests translate to pointed hedge "
            "representations (text nodes cannot be located)");
    }
    return Status::InvalidArgument("unknown node test");
  };

  std::vector<strre::Regex> any_sym_alts;
  for (size_t i = 0; i < alphabet.size(); ++i) {
    any_sym_alts.push_back(strre::Sym(static_cast<strre::Symbol>(i)));
  }
  strre::Regex any_ancestors = strre::Star(strre::AltAll(any_sym_alts));

  if (path.steps.empty()) {
    return Status::InvalidArgument("empty location path");
  }

  // Identify which steps are the '//' markers (descendant-or-self::node())
  // the parser inserted, and validate the rest.
  std::vector<bool> is_dos(path.steps.size(), false);
  for (size_t i = 0; i < path.steps.size(); ++i) {
    const Step& step = path.steps[i];
    if (!step.predicates.empty()) {
      return Status::InvalidArgument(
          "predicates are outside the translatable fragment; use triplet "
          "conditions directly");
    }
    if (step.axis == Axis::kDescendantOrSelf &&
        step.test == NodeTest::kAnyNode) {
      is_dos[i] = true;
      continue;
    }
    if (step.axis == Axis::kDescendant) {
      is_dos[i] = false;  // handled below as dos + child
      continue;
    }
    if (step.axis != Axis::kChild) {
      return Status::InvalidArgument(
          "only child and '//' (descendant) steps translate to path "
          "expressions; sibling/ancestor conditions need triplets");
    }
  }
  if (is_dos[path.steps.size() - 1]) {
    return Status::InvalidArgument(
        "a translatable path must end in an element step");
  }

  // Build the pointed hedge representation bottom-to-top: the last step is
  // the located node, then its ancestors in reverse step order; '//'
  // markers become (any element)* gaps, as does an explicit descendant
  // axis on the following step.
  Result<strre::Regex> last = step_regex(path.steps.back());
  if (!last.ok()) return last.status();
  strre::Regex regex = std::move(last).value();
  bool pending_gap = path.steps.back().axis == Axis::kDescendant;
  for (size_t i = path.steps.size() - 1; i-- > 0;) {
    const Step& step = path.steps[i];
    if (is_dos[i]) {
      pending_gap = true;
      continue;
    }
    if (pending_gap) {
      regex = strre::Concat(std::move(regex), any_ancestors);
      pending_gap = false;
    }
    Result<strre::Regex> sr = step_regex(step);
    if (!sr.ok()) return sr.status();
    regex = strre::Concat(std::move(regex), std::move(sr).value());
    if (step.axis == Axis::kDescendant) pending_gap = true;
  }
  if (pending_gap) {
    // Leading '//' (or descendant axis on the first step): anything above.
    regex = strre::Concat(std::move(regex), any_ancestors);
  }

  return SelectionQuery{nullptr,
                        phr::Phr(std::move(triplets), std::move(regex))};
}

}  // namespace hedgeq::baseline
