#ifndef HEDGEQ_BASELINE_TRANSLATE_H_
#define HEDGEQ_BASELINE_TRANSLATE_H_

#include <span>

#include "baseline/xpath.h"
#include "query/selection.h"

namespace hedgeq::baseline {

/// Translates the downward-axis XPath fragment (child steps, '//'
/// descendant steps, name tests and '*', no predicates) into an equivalent
/// selection query over pointed hedge representations — the formal
/// counterpart the paper argues for in Sections 1-2. Wildcards need the
/// concrete element alphabet, so the caller supplies it.
///
/// Returns kInvalidArgument for steps outside the fragment (reverse axes,
/// predicates, text()/node() result nodes); those require either the full
/// triplet syntax (sibling axes), or are features of the host language
/// rather than of path expressions (position arithmetic).
Result<query::SelectionQuery> TranslateXPath(
    const PathExpr& path, std::span<const hedge::SymbolId> alphabet);

}  // namespace hedgeq::baseline

#endif  // HEDGEQ_BASELINE_TRANSLATE_H_
